package detect

import (
	"testing"

	"roboads/internal/core"
	"roboads/internal/mat"
)

// actuatorOutput builds a minimal engine output whose actuator statistic
// is either strongly alarming or clean, with DaValid controlling
// observability.
func actuatorOutput(k int, alarming, daValid bool) *core.Output {
	da := mat.VecOf(0, 0)
	if alarming {
		da = mat.VecOf(10, 10)
	}
	res := &core.Result{
		Da:      da,
		Pa:      mat.Identity(2).Scale(1e-2),
		DaValid: daValid,
	}
	return &core.Output{
		Iteration:    k,
		SelectedMode: &core.Mode{Name: "ref=synthetic"},
		Result:       res,
	}
}

// Iterations where the actuator anomaly is unobservable (DaValid false,
// e.g. standstill) must hold the c-of-w window rather than dilute it
// with negatives: a confirmed alarm survives a brief stop, and resumes
// counting down only once observability returns.
func TestDecideHoldsActuatorWindowWhenUnobservable(t *testing.T) {
	d := NewDecider(DefaultConfig()) // actuator window: 3 of 6

	k := 0
	step := func(alarming, daValid bool) *Decision {
		dec, err := d.Decide(actuatorOutput(k, alarming, daValid))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		k++
		return dec
	}

	// Confirm an attack: three alarming, observable iterations.
	var dec *Decision
	for i := 0; i < 3; i++ {
		dec = step(true, true)
	}
	if !dec.ActuatorAlarm {
		t.Fatal("actuator alarm not confirmed after 3 of 6 positives")
	}

	// Standstill: far more unobservable iterations than the window is
	// wide. The alarm must hold throughout.
	for i := 0; i < 10; i++ {
		if dec = step(false, false); !dec.ActuatorAlarm {
			t.Fatalf("unobservable iteration %d dropped the confirmed alarm", i)
		}
		if dec.ActuatorRaw {
			t.Fatal("unobservable iteration reported a raw actuator positive")
		}
	}

	// Observability returns with a clean actuator: the positives age out
	// and the alarm clears within one window length.
	cleared := false
	for i := 0; i < 6; i++ {
		if dec = step(false, true); !dec.ActuatorAlarm {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatal("alarm did not clear after observable clean iterations")
	}
}
