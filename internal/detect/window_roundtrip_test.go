package detect

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestWindowHistoryRoundTripProperty is the durability property behind
// WindowState: at ANY fill level and ring rotation, History → SetHistory
// into a fresh window of the same shape reproduces the window's
// observable behavior exactly — Met, Fill, and every future Push result.
// Randomized over shapes, prefix lengths (0 to several wraps), and
// outcome sequences with a fixed seed.
func TestWindowHistoryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		size := 1 + rng.Intn(12)
		criteria := 1 + rng.Intn(size)
		prefix := rng.Intn(3*size + 2) // covers empty, partial, and multi-wrap rings
		suffix := size + rng.Intn(2*size)

		w1 := NewSlidingWindow(size, criteria)
		for i := 0; i < prefix; i++ {
			w1.Push(rng.Intn(2) == 0)
		}

		h := w1.History()
		if want := prefix; want > size {
			want = size
		} else if len(h) != prefix && prefix <= size {
			t.Fatalf("trial %d: history length %d, want %d", trial, len(h), prefix)
		}
		w2 := NewSlidingWindow(size, criteria)
		w2.SetHistory(h)

		if w1.Met() != w2.Met() || w1.Fill() != w2.Fill() {
			t.Fatalf("trial %d (%d-of-%d, prefix %d): restored window disagrees: met %v/%v fill %v/%v",
				trial, criteria, size, prefix, w1.Met(), w2.Met(), w1.Fill(), w2.Fill())
		}
		for i := 0; i < suffix; i++ {
			o := rng.Intn(2) == 0
			if r1, r2 := w1.Push(o), w2.Push(o); r1 != r2 {
				t.Fatalf("trial %d (%d-of-%d, prefix %d): push %d diverged: %v vs %v",
					trial, criteria, size, prefix, i, r1, r2)
			}
		}
		if !reflect.DeepEqual(w1.History(), w2.History()) {
			t.Fatalf("trial %d: histories diverged after identical pushes", trial)
		}
	}
}

// TestWindowSetHistoryTruncatesToNewest pins the overflow contract:
// replaying more outcomes than Size retains exactly what pushing the full
// sequence would have — the newest Size outcomes.
func TestWindowSetHistoryTruncatesToNewest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		size := 1 + rng.Intn(8)
		criteria := 1 + rng.Intn(size)
		n := size + 1 + rng.Intn(3*size)
		seq := make([]bool, n)
		for i := range seq {
			seq[i] = rng.Intn(2) == 0
		}

		pushed := NewSlidingWindow(size, criteria)
		for _, o := range seq {
			pushed.Push(o)
		}
		set := NewSlidingWindow(size, criteria)
		set.SetHistory(seq)

		if !reflect.DeepEqual(pushed.History(), set.History()) || pushed.Met() != set.Met() {
			t.Fatalf("trial %d: SetHistory(%d outcomes) != pushing them (size %d)", trial, n, size)
		}
	}
}

// TestDeciderHoldStateRoundTrip checkpoints a decider mid-hold: an
// actuator alarm confirmed before a standstill must survive
// ExportState → ImportState into a fresh decider, stay held through the
// remaining unobservable iterations, and age out on the same iteration
// as the uninterrupted decider once observability returns.
func TestDeciderHoldStateRoundTrip(t *testing.T) {
	script := []struct{ alarming, daValid bool }{
		{true, true}, {true, true}, {true, true}, // confirm 3-of-6
		{false, false}, {false, false}, // standstill: hold
		{false, false}, {false, false},
		{false, true}, {false, true}, {false, true}, // age out
		{false, true}, {false, true}, {false, true},
	}
	run := func(d *Decider, from int, restoreAt int, src *Decider) []bool {
		var alarms []bool
		for k := from; k < len(script); k++ {
			if src != nil && k == restoreAt {
				if err := d.ImportState(src.ExportState()); err != nil {
					t.Fatalf("import at k=%d: %v", k, err)
				}
			}
			dec, err := d.Decide(actuatorOutput(k, script[k].alarming, script[k].daValid))
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			alarms = append(alarms, dec.ActuatorAlarm)
		}
		return alarms
	}

	ref := run(NewDecider(DefaultConfig()), 0, -1, nil)
	if !ref[2] || !ref[5] {
		t.Fatal("reference script did not confirm and hold the alarm as designed")
	}

	// Cut at every iteration, including mid-hold (k=4..6) where the alarm
	// is live only because the window history is preserved.
	for cut := 1; cut < len(script); cut++ {
		head := NewDecider(DefaultConfig())
		for k := 0; k < cut; k++ {
			if _, err := head.Decide(actuatorOutput(k, script[k].alarming, script[k].daValid)); err != nil {
				t.Fatalf("cut %d k=%d: %v", cut, k, err)
			}
		}
		restored := NewDecider(DefaultConfig())
		tail := run(restored, cut, cut, head)
		if !reflect.DeepEqual(tail, ref[cut:]) {
			t.Fatalf("cut %d: restored alarm sequence %v, want %v", cut, tail, ref[cut:])
		}
	}
}
