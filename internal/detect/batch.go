package detect

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"roboads/internal/core"
	"roboads/internal/mat"
)

// BatchKey fingerprints everything that decides whether two detectors
// may share one DetectorBatch workspace: the engine's batchable profile
// (core.Engine.Fingerprint — plant model, mode structure, weighting
// configuration) combined with the decision parameters. Detectors built
// from the same robot profile under the same configuration always agree;
// a key match guarantees congruent mode-bank shapes and identical
// decision dynamics, so co-stepping them changes no session's output.
func (d *Detector) BatchKey() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range [2]uint64{d.engine.Fingerprint(), d.decider.cfg.configHash()} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// DetectorBatch steps up to K same-profile detectors per call through
// one blocked core.EngineBatch pass followed by each detector's own
// decision maker. Per-session reports are bit-for-bit what each
// detector's scalar Step would produce: the engine layer is the batched
// engine (whose contract is bit-identity, see core.EngineBatch), and the
// decision layer is literally the per-session Decider running on the
// per-session Output.
//
// A DetectorBatch is a workspace, not an owner: detectors are passed per
// Step call and may differ call to call as long as their BatchKey
// matches the prototype's. Detectors whose key differs — or whose
// engine the blocked path cannot carry — are stepped through their own
// scalar path within the same call, so a mixed batch still answers
// every slot. The caller must guarantee the detectors are not stepped
// concurrently elsewhere; the workspace itself must not be shared
// between concurrent Step calls.
type DetectorBatch struct {
	key     uint64
	eb      *core.EngineBatch
	engines []*core.Engine // capacity-sized staging, rebound per Step
}

// NewDetectorBatch returns a batch workspace shaped after proto's
// engine with room for up to capacity sessions per Step call.
func NewDetectorBatch(proto *Detector, capacity int) (*DetectorBatch, error) {
	if proto == nil {
		return nil, errors.New("detect: batch needs a prototype detector")
	}
	eb, err := core.NewEngineBatch(proto.engine, capacity)
	if err != nil {
		return nil, err
	}
	return &DetectorBatch{
		key:     proto.BatchKey(),
		eb:      eb,
		engines: make([]*core.Engine, capacity),
	}, nil
}

// Key returns the batch profile fingerprint of the prototype detector.
func (b *DetectorBatch) Key() uint64 { return b.key }

// Capacity returns the maximum number of detectors per Step call.
func (b *DetectorBatch) Capacity() int { return b.eb.Capacity() }

// Step runs one control iteration for every detector, batched. The
// slices must be equal length and no longer than the batch capacity;
// entry k of the returned slices is exactly what dets[k].Step(us[k],
// readings[k]) would have returned. Slots whose detector does not match
// the batch profile fall back to that detector's scalar path — same
// pure function, same bits — so no slot is left unstepped.
func (b *DetectorBatch) Step(dets []*Detector, us []mat.Vec, readings []map[string]mat.Vec) ([]*Report, []error) {
	k := len(dets)
	if k > b.eb.Capacity() || len(us) != k || len(readings) != k {
		panic(fmt.Errorf("detect: batch step with %d detectors, %d commands, %d readings (capacity %d)",
			k, len(us), len(readings), b.eb.Capacity()))
	}
	engines := b.engines[:k]
	for s, d := range dets {
		engines[s] = nil
		if d != nil && d.BatchKey() == b.key {
			engines[s] = d.engine
		}
	}
	outs, errs := b.eb.Step(engines, us, readings)

	reports := make([]*Report, k)
	for s, d := range dets {
		if d == nil {
			errs[s] = errors.New("detect: nil detector in batch")
			continue
		}
		if errors.Is(errs[s], core.ErrBatchShape) {
			// Profile mismatch (or a shape the blocked path cannot
			// carry): the scalar path is the fallback, and by the
			// bit-identity contract its output is the answer either way.
			reports[s], errs[s] = d.StepContext(context.Background(), us[s], readings[s])
			continue
		}
		if errs[s] != nil {
			continue
		}
		dec, err := d.decider.Decide(outs[s])
		if err != nil {
			errs[s] = err
			continue
		}
		reports[s] = &Report{Engine: outs[s], Decision: dec}
	}
	return reports, errs
}
