package detect

// DecisionStats is one Decide call's instrumentation record. The struct
// is owned by the Decider and reused across iterations; its PerSensor
// map is the Decision's own (borrowed). Observers must read
// synchronously and copy anything they retain.
type DecisionStats struct {
	// Iteration is the control iteration index.
	Iteration int
	// Mode is the selected mode's name.
	Mode string
	// Condition is the confirmed condition rendered as a string (e.g.
	// "S{ips}/A1"); ConditionChanged reports that it differs from the
	// previous iteration's.
	Condition        string
	ConditionChanged bool
	// SensorStat/SensorThreshold and the raw/confirmed flags mirror the
	// aggregate sensor test of the Decision.
	SensorStat, SensorThreshold float64
	SensorRaw, SensorAlarm      bool
	// ActuatorStat/ActuatorThreshold and flags mirror the actuator test.
	// ActuatorHeld reports the window was held (anomaly unobservable this
	// iteration), in which case ActuatorStat is meaningless.
	ActuatorStat, ActuatorThreshold float64
	ActuatorRaw, ActuatorAlarm      bool
	ActuatorHeld                    bool
	// SensorWindowFill and ActuatorWindowFill are the c-of-w window fill
	// levels in [0,1] (pushed outcomes / window size).
	SensorWindowFill, ActuatorWindowFill float64
	// PerSensor maps testing sensors to their identification statistics
	// (borrowed from the Decision — do not retain).
	PerSensor map[string]float64
}

// Observer receives decision-maker instrumentation events. Decision is
// called synchronously at the end of every Decide, after the sliding
// windows were pushed. Implementations must not block and must not
// mutate the record: observation is strictly read-only and cannot
// change detection output. A nil Observer in Config disables the hook
// at the cost of one nil check per Decide.
type Observer interface {
	Decision(*DecisionStats)
}
