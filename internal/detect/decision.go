package detect

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"roboads/internal/core"
	"roboads/internal/mat"
	"roboads/internal/stat"
)

// Config holds the decision parameters profiled in §V-F: the chi-square
// confidence levels α and the sliding-window size w / criteria c for each
// misbehavior class.
type Config struct {
	// SensorAlpha is the confidence level for the aggregate and
	// per-sensor tests. Paper optimum: 0.005.
	SensorAlpha float64
	// SensorWindow and SensorCriteria are the c-of-w parameters for
	// sensor alarms. Paper optimum: 2 of 2.
	SensorWindow, SensorCriteria int
	// ActuatorAlpha is the confidence level for the actuator test.
	// Paper optimum: 0.05.
	ActuatorAlpha float64
	// ActuatorWindow and ActuatorCriteria are the c-of-w parameters for
	// actuator alarms. Paper optimum: 3 of 6.
	ActuatorWindow, ActuatorCriteria int
	// Observer receives per-Decide instrumentation (test statistics,
	// window fill levels, condition transitions). Nil disables the hook;
	// observation is read-only and cannot change detection output.
	Observer Observer
}

// DefaultConfig returns the parameters the paper selects in §V-F.
func DefaultConfig() Config {
	return Config{
		SensorAlpha:      0.005,
		SensorWindow:     2,
		SensorCriteria:   2,
		ActuatorAlpha:    0.05,
		ActuatorWindow:   6,
		ActuatorCriteria: 3,
	}
}

// Condition is a reported misbehavior condition: which sensing workflows
// are confirmed misbehaving, and whether the actuators are.
type Condition struct {
	// Sensors holds the confirmed misbehaving workflow names, sorted.
	Sensors []string
	// Actuator reports a confirmed actuator misbehavior.
	Actuator bool
}

// Clean reports whether the condition is S0/A0 (nothing confirmed).
func (c Condition) Clean() bool { return len(c.Sensors) == 0 && !c.Actuator }

// Equal reports whether two conditions are identical.
func (c Condition) Equal(o Condition) bool {
	if c.Actuator != o.Actuator || len(c.Sensors) != len(o.Sensors) {
		return false
	}
	for i := range c.Sensors {
		if c.Sensors[i] != o.Sensors[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer, e.g. "S{ips}/A1".
func (c Condition) String() string {
	a := "A0"
	if c.Actuator {
		a = "A1"
	}
	if len(c.Sensors) == 0 {
		return "S0/" + a
	}
	return "S{" + strings.Join(c.Sensors, ",") + "}/" + a
}

// Decision is one control iteration's decision-maker output.
type Decision struct {
	// Iteration is the control iteration index.
	Iteration int
	// Mode is the selected mode's name.
	Mode string
	// SensorStat and SensorThreshold are the aggregate sensor test
	// statistic d̂sᵀ·Ps⁻¹·d̂s and its chi-square threshold.
	SensorStat, SensorThreshold float64
	// SensorRaw is the raw (pre-window) aggregate sensor test outcome.
	SensorRaw bool
	// SensorAlarm is the window-confirmed sensor misbehavior alarm.
	SensorAlarm bool
	// ActuatorStat and ActuatorThreshold are the actuator test statistic
	// d̂aᵀ·Pa⁻¹·d̂a and its threshold.
	ActuatorStat, ActuatorThreshold float64
	// ActuatorRaw is the raw actuator test outcome.
	ActuatorRaw bool
	// ActuatorAlarm is the window-confirmed actuator misbehavior alarm.
	ActuatorAlarm bool
	// PerSensorStats maps each testing sensor to its identification
	// statistic.
	PerSensorStats map[string]float64
	// Condition is the confirmed misbehavior condition.
	Condition Condition
	// Da is the actuator anomaly estimate (per-actuator quantification,
	// Algorithm 1 lines 22–24).
	Da mat.Vec
	// SensorAnomalies are the per-sensor anomaly estimates of the
	// selected mode.
	SensorAnomalies []core.SensorAnomaly
}

// Decider is the stateful decision maker: it holds the sliding windows
// and cached chi-square thresholds across control iterations.
type Decider struct {
	cfg            Config
	sensorWindow   *SlidingWindow
	actuatorWindow *SlidingWindow
	perSensor      map[string]*SlidingWindow
	thresholds     map[int]float64 // sensor-side quantiles by dof
	actThresholds  map[int]float64 // actuator-side quantiles by dof
	// spd is the fallback SPD factor cache for the χ² statistics when
	// the engine output does not carry one (Output.SPD); it is reset
	// every Decide so entries never outlive their covariances.
	spd *mat.CholCache

	// obs is Config.Observer; nil when instrumentation is off. stats is
	// the reused DecisionStats record handed to it, and prevCond the
	// previous iteration's condition for transition detection (tracked
	// only while an observer is attached).
	obs      Observer
	stats    DecisionStats
	prevCond Condition
	prevSet  bool
}

// NewDecider returns a decision maker with the given parameters.
func NewDecider(cfg Config) *Decider {
	return &Decider{
		cfg:            cfg,
		sensorWindow:   NewSlidingWindow(cfg.SensorWindow, cfg.SensorCriteria),
		actuatorWindow: NewSlidingWindow(cfg.ActuatorWindow, cfg.ActuatorCriteria),
		perSensor:      make(map[string]*SlidingWindow),
		thresholds:     make(map[int]float64),
		actThresholds:  make(map[int]float64),
		spd:            mat.NewCholCache(),
		obs:            cfg.Observer,
	}
}

func (d *Decider) sensorThreshold(dof int) (float64, error) {
	if t, ok := d.thresholds[dof]; ok {
		return t, nil
	}
	t, err := stat.ChiSquareQuantile(d.cfg.SensorAlpha, dof)
	if err != nil {
		return 0, fmt.Errorf("detect: sensor threshold: %w", err)
	}
	d.thresholds[dof] = t
	return t, nil
}

func (d *Decider) actuatorThreshold(dof int) (float64, error) {
	if t, ok := d.actThresholds[dof]; ok {
		return t, nil
	}
	t, err := stat.ChiSquareQuantile(d.cfg.ActuatorAlpha, dof)
	if err != nil {
		return 0, fmt.Errorf("detect: actuator threshold: %w", err)
	}
	d.actThresholds[dof] = t
	return t, nil
}

func (d *Decider) windowFor(sensor string) *SlidingWindow {
	w, ok := d.perSensor[sensor]
	if !ok {
		w = NewSlidingWindow(d.cfg.SensorWindow, d.cfg.SensorCriteria)
		d.perSensor[sensor] = w
	}
	return w
}

// Decide runs Algorithm 1 lines 10–25 on one engine output.
func (d *Decider) Decide(out *core.Output) (*Decision, error) {
	dec := &Decision{
		Iteration:       out.Iteration,
		Mode:            out.SelectedMode.Name,
		PerSensorStats:  make(map[string]float64, len(out.SensorAnomalies)),
		Da:              out.Result.Da.Clone(),
		SensorAnomalies: out.SensorAnomalies,
	}

	// Every χ² statistic below is vᵀ·cov⁻¹·v against an SPD covariance.
	// The engine already factored most of them during its weight update
	// and hands the cache along in Output.SPD; reuse it so each
	// covariance is factored at most once per control iteration.
	spd := out.SPD
	if spd == nil {
		d.spd.Reset()
		spd = d.spd
	}

	// Aggregate sensor test (line 10).
	if ds := out.Result.Ds; ds != nil && ds.Len() > 0 {
		quad, err := spd.InvQuadForm(out.Result.Ps, ds)
		if err != nil {
			// Singular Ps: treat as non-informative rather than alarming.
			quad = 0
		}
		dec.SensorStat = quad
		threshold, err := d.sensorThreshold(ds.Len())
		if err != nil {
			return nil, err
		}
		dec.SensorThreshold = threshold
		dec.SensorRaw = quad > threshold
	}
	dec.SensorAlarm = d.sensorWindow.Push(dec.SensorRaw)

	// Actuator test (line 11). Skipped when the actuator anomaly was
	// unobservable this iteration (NUISE degraded to a plain EKF step) —
	// and crucially the c-of-w window is *held*, not fed a negative: an
	// uninformative iteration says nothing about the actuator, and
	// pushing false would let a brief standstill dilute the window and
	// mask an ongoing attack. ActuatorAlarm keeps reflecting the last
	// confirmed state until observability returns.
	actuatorHeld := true
	if da := out.Result.Da; da.Len() > 0 && out.Result.DaValid {
		actuatorHeld = false
		quad, err := spd.InvQuadForm(out.Result.Pa, da)
		if err != nil {
			quad = 0
		}
		dec.ActuatorStat = quad
		threshold, err := d.actuatorThreshold(da.Len())
		if err != nil {
			return nil, err
		}
		dec.ActuatorThreshold = threshold
		dec.ActuatorRaw = quad > threshold
		dec.ActuatorAlarm = d.actuatorWindow.Push(dec.ActuatorRaw)
	} else {
		dec.ActuatorAlarm = d.actuatorWindow.Met()
	}
	dec.Condition.Actuator = dec.ActuatorAlarm

	// Per-sensor identification (lines 13–18). Every testing sensor's
	// statistic feeds its own c-of-w window; the reference sensors of the
	// selected mode are hypothesized clean and push a negative.
	tested := make(map[string]bool, len(out.SensorAnomalies))
	for _, sa := range out.SensorAnomalies {
		quad, err := spd.InvQuadForm(sa.Ps, sa.Ds)
		if err != nil {
			quad = 0
		}
		dec.PerSensorStats[sa.Sensor] = quad
		threshold, err := d.sensorThreshold(sa.Ds.Len())
		if err != nil {
			return nil, err
		}
		confirmed := d.windowFor(sa.Sensor).Push(quad > threshold)
		tested[sa.Sensor] = true
		if dec.SensorAlarm && confirmed {
			dec.Condition.Sensors = append(dec.Condition.Sensors, sa.Sensor)
		}
	}
	for _, name := range out.SelectedMode.ReferenceNames {
		if !tested[name] {
			d.windowFor(name).Push(false)
		}
	}
	sort.Strings(dec.Condition.Sensors)

	if d.obs != nil {
		changed := !d.prevSet || !dec.Condition.Equal(d.prevCond)
		d.prevCond, d.prevSet = dec.Condition, true
		d.stats = DecisionStats{
			Iteration:          dec.Iteration,
			Mode:               dec.Mode,
			Condition:          dec.Condition.String(),
			ConditionChanged:   changed,
			SensorStat:         dec.SensorStat,
			SensorThreshold:    dec.SensorThreshold,
			SensorRaw:          dec.SensorRaw,
			SensorAlarm:        dec.SensorAlarm,
			ActuatorStat:       dec.ActuatorStat,
			ActuatorThreshold:  dec.ActuatorThreshold,
			ActuatorRaw:        dec.ActuatorRaw,
			ActuatorAlarm:      dec.ActuatorAlarm,
			ActuatorHeld:       actuatorHeld,
			SensorWindowFill:   d.sensorWindow.Fill(),
			ActuatorWindowFill: d.actuatorWindow.Fill(),
			PerSensor:          dec.PerSensorStats,
		}
		d.obs.Decision(&d.stats)
	}
	return dec, nil
}

// Reset clears all sliding-window state.
func (d *Decider) Reset() {
	d.sensorWindow.Reset()
	d.actuatorWindow.Reset()
	for _, w := range d.perSensor {
		w.Reset()
	}
}

// Detector is the full RoboADS pipeline of Fig. 3: monitor inputs feed
// the multi-mode engine, the mode selector picks the hypothesis, and the
// decision maker confirms and identifies misbehaviors.
type Detector struct {
	engine  *core.Engine
	decider *Decider
}

// NewDetector wires an engine and a decision configuration together.
func NewDetector(engine *core.Engine, cfg Config) *Detector {
	return &Detector{engine: engine, decider: NewDecider(cfg)}
}

// Report is one control iteration's full detector output.
type Report struct {
	// Engine is the multi-mode estimation result.
	Engine *core.Output
	// Decision is the decision maker result.
	Decision *Decision
}

// Step processes one control iteration: the planned command u_{k-1} and
// the latest readings z_k (Algorithm 1 lines 2–3). It is StepContext
// under context.Background() and shares its bit-for-bit output contract.
func (d *Detector) Step(u mat.Vec, readings map[string]mat.Vec) (*Report, error) {
	return d.StepContext(context.Background(), u, readings)
}

// StepContext is Step with cancellation: when ctx is cancelled the
// iteration is abandoned and ctx.Err() returned. The abort is
// all-or-nothing — neither the engine's mode bank nor the decision
// windows advance, so the pipeline resumes bit-for-bit on the next call
// (see core.Engine.StepContext). The decision layer runs after the
// engine gather and is not itself interruptible; cancellation latency is
// bounded by one mode-bank fan-out.
func (d *Detector) StepContext(ctx context.Context, u mat.Vec, readings map[string]mat.Vec) (*Report, error) {
	out, err := d.engine.StepContext(ctx, u, readings)
	if err != nil {
		return nil, err
	}
	dec, err := d.decider.Decide(out)
	if err != nil {
		return nil, err
	}
	return &Report{Engine: out, Decision: dec}, nil
}

// State exposes the engine's fused state estimate.
func (d *Detector) State() (mat.Vec, *mat.Mat) { return d.engine.State() }

// Close releases the detector's engine resources (the mode-bank worker
// pool). Safe to call more than once; the detector must not be stepped
// afterwards. Detectors that are simply dropped are cleaned up by the
// engine's finalizer, but deterministic shutdown — a fleet session being
// closed, a service draining — should call Close.
func (d *Detector) Close() { d.engine.Close() }
