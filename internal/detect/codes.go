package detect

// Table III condition codes for the Khepera sensor suite. The engine and
// decision maker are sensor-agnostic; these helpers render their output
// in the paper's S0–S6 / A0–A1 notation for the Table II experiments.

// Khepera sensing workflow names.
const (
	SensorIPS          = "ips"
	SensorWheelEncoder = "wheel-encoder"
	SensorLidar        = "lidar"
)

// KheperaSensorCode maps a confirmed sensor set to the Table III sensor
// mode S0–S6. Conditions outside the table (all three corrupted — the
// paper excludes it) render as "S?".
func KheperaSensorCode(c Condition) string {
	has := make(map[string]bool, len(c.Sensors))
	for _, s := range c.Sensors {
		has[s] = true
	}
	switch {
	case len(c.Sensors) == 0:
		return "S0"
	case len(c.Sensors) == 1 && has[SensorIPS]:
		return "S1"
	case len(c.Sensors) == 1 && has[SensorWheelEncoder]:
		return "S2"
	case len(c.Sensors) == 1 && has[SensorLidar]:
		return "S3"
	case len(c.Sensors) == 2 && has[SensorWheelEncoder] && has[SensorLidar]:
		return "S4"
	case len(c.Sensors) == 2 && has[SensorIPS] && has[SensorLidar]:
		return "S5"
	case len(c.Sensors) == 2 && has[SensorIPS] && has[SensorWheelEncoder]:
		return "S6"
	default:
		return "S?"
	}
}

// ActuatorCode maps the actuator flag to A0/A1 (Table III).
func ActuatorCode(c Condition) string {
	if c.Actuator {
		return "A1"
	}
	return "A0"
}

// CodeString renders "S…,A…" for a condition, e.g. "S1,A0".
func CodeString(c Condition) string {
	return KheperaSensorCode(c) + "," + ActuatorCode(c)
}
