package detect

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"roboads/internal/core"
)

// State is the complete cross-iteration state of a Detector: the engine
// bank's beliefs and weights plus the decision maker's sliding windows
// and hold state. It is the unit the durability layer snapshots — a
// Detector restored from an exported State and fed the remaining frames
// produces reports bit-for-bit identical to the uninterrupted run.
type State struct {
	// Engine is the multi-mode engine state.
	Engine *core.EngineState `json:"engine"`
	// Decider is the decision-maker state.
	Decider *DeciderState `json:"decider"`
}

// DeciderState is the decision maker's cross-iteration state: every
// c-of-w window's outcome history (which also carries the actuator
// hold state — Met() is a pure function of the history) plus the
// previous confirmed condition used for transition instrumentation.
type DeciderState struct {
	// Sensor and Actuator are the aggregate window histories.
	Sensor WindowState `json:"sensor"`
	// Actuator's history doubles as the hold state: when the actuator
	// anomaly is unobservable the decision maker reports Met() of this
	// window unchanged, so restoring the history restores the hold.
	Actuator WindowState `json:"actuator"`
	// PerSensor maps testing-sensor names to their identification
	// window histories.
	PerSensor map[string]WindowState `json:"perSensor,omitempty"`
	// PrevCondition is the previously reported condition (transition
	// detection for the observer hook); nil when no iteration has run.
	PrevCondition *Condition `json:"prevCondition,omitempty"`
	// ConfigHash fingerprints the decision parameters (alphas, window
	// shapes). Import refuses a state recorded under different
	// parameters: the windows would confirm under different criteria.
	ConfigHash uint64 `json:"configHash"`
}

// WindowState is one sliding window's exported shape and history.
type WindowState struct {
	// Size and Criteria are the window's c-of-w shape, validated on
	// import against the receiving window.
	Size     int `json:"size"`
	Criteria int `json:"criteria"`
	// Outcomes are the pushed raw test outcomes, oldest first.
	Outcomes []bool `json:"outcomes,omitempty"`
}

// exportWindow captures one window's shape and history.
func exportWindow(w *SlidingWindow) WindowState {
	return WindowState{Size: w.Size(), Criteria: w.Criteria(), Outcomes: w.History()}
}

// importWindow validates ws against w's shape and replays its history.
func importWindow(w *SlidingWindow, ws WindowState, label string) error {
	if ws.Size != w.Size() || ws.Criteria != w.Criteria() {
		return fmt.Errorf("%w: %s window %d-of-%d (want %d-of-%d)",
			core.ErrStateMismatch, label, ws.Criteria, ws.Size, w.Criteria(), w.Size())
	}
	if len(ws.Outcomes) > ws.Size {
		return fmt.Errorf("%w: %s window history %d exceeds size %d",
			core.ErrStateMismatch, label, len(ws.Outcomes), ws.Size)
	}
	w.SetHistory(ws.Outcomes)
	return nil
}

// configHash fingerprints the Config fields that influence decisions.
// The Observer is excluded (contractually output-neutral). Window shape
// clamping mirrors NewSlidingWindow so a Config that normalizes to the
// same windows hashes equally.
func (cfg Config) configHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	putF64 := func(v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	putInt := func(v int) { putF64(float64(v)) }
	clamp := func(size, criteria int) (int, int) {
		if size < 1 {
			size = 1
		}
		if criteria < 1 {
			criteria = 1
		}
		if criteria > size {
			criteria = size
		}
		return size, criteria
	}
	putF64(cfg.SensorAlpha)
	putF64(cfg.ActuatorAlpha)
	sw, sc := clamp(cfg.SensorWindow, cfg.SensorCriteria)
	aw, ac := clamp(cfg.ActuatorWindow, cfg.ActuatorCriteria)
	putInt(sw)
	putInt(sc)
	putInt(aw)
	putInt(ac)
	return h.Sum64()
}

// ExportState captures the decision maker's cross-iteration state. The
// threshold caches are excluded: they are pure functions of the
// configuration and rebuild on demand.
func (d *Decider) ExportState() *DeciderState {
	st := &DeciderState{
		Sensor:     exportWindow(d.sensorWindow),
		Actuator:   exportWindow(d.actuatorWindow),
		ConfigHash: d.cfg.configHash(),
	}
	if len(d.perSensor) > 0 {
		st.PerSensor = make(map[string]WindowState, len(d.perSensor))
		for name, w := range d.perSensor {
			st.PerSensor[name] = exportWindow(w)
		}
	}
	if d.prevSet {
		cond := Condition{Sensors: append([]string(nil), d.prevCond.Sensors...), Actuator: d.prevCond.Actuator}
		st.PrevCondition = &cond
	}
	return st
}

// ImportState replaces the decision maker's state with st, validating
// the configuration fingerprint and every window shape. Windows present
// in the decider but absent from st are reset; per-sensor windows named
// only in st are created. On error the decider may have been partially
// reset and must be re-imported or Reset before reuse.
func (d *Decider) ImportState(st *DeciderState) error {
	if st == nil {
		return fmt.Errorf("%w: nil decider state", core.ErrStateMismatch)
	}
	if st.ConfigHash != d.cfg.configHash() {
		return fmt.Errorf("%w: decision config hash %x (want %x)", core.ErrStateMismatch, st.ConfigHash, d.cfg.configHash())
	}
	if err := importWindow(d.sensorWindow, st.Sensor, "sensor"); err != nil {
		return err
	}
	if err := importWindow(d.actuatorWindow, st.Actuator, "actuator"); err != nil {
		return err
	}
	// Deterministic import order so any error is stable across runs.
	names := make([]string, 0, len(st.PerSensor))
	for name := range st.PerSensor {
		names = append(names, name)
	}
	sort.Strings(names)
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if err := importWindow(d.windowFor(name), st.PerSensor[name], "sensor "+name); err != nil {
			return err
		}
		seen[name] = true
	}
	for name, w := range d.perSensor {
		if !seen[name] {
			w.Reset()
		}
	}
	if st.PrevCondition != nil {
		d.prevCond = Condition{Sensors: append([]string(nil), st.PrevCondition.Sensors...), Actuator: st.PrevCondition.Actuator}
		d.prevSet = true
	} else {
		d.prevCond = Condition{}
		d.prevSet = false
	}
	return nil
}

// ExportState captures the detector's complete cross-iteration state:
// the engine bank and the decision windows. The detector must not be
// stepped concurrently.
func (d *Detector) ExportState() *State {
	return &State{Engine: d.engine.ExportState(), Decider: d.decider.ExportState()}
}

// ImportState restores a state exported by ExportState (possibly in a
// previous process) into this detector. The detector must have been
// built from the same profile and configuration: mode set, state
// dimension, window shapes, and the engine/decision config fingerprints
// are all validated, and core.ErrStateMismatch returned on any
// disagreement. After a successful import, feeding the frames recorded
// after the export produces reports bit-for-bit identical to the
// uninterrupted run. The detector must not be stepped concurrently.
func (d *Detector) ImportState(st *State) error {
	if st == nil || st.Engine == nil || st.Decider == nil {
		return fmt.Errorf("%w: incomplete detector state", core.ErrStateMismatch)
	}
	if err := d.engine.ImportState(st.Engine); err != nil {
		return err
	}
	return d.decider.ImportState(st.Decider)
}
