// Package scenario implements the adversarial scenario engine of ROADMAP
// item 4: a versioned JSON DSL composing worlds × robot profiles ×
// attack schedules, a deterministic seeded generator/fuzzer sweeping the
// DSL's parameter space, and a runner executing suites through the real
// robot.Profile detector path — optionally batch-stepped via
// core.EngineBatch — into BENCH_quality.json leaderboard records.
//
// The DSL is deliberately flat: one Suite holds Scenarios, each naming a
// robot, a world, and a list of Attacks whose Kind selects an
// internal/attack primitive and whose Envelope shapes onset, duration,
// ramp, and intermittency. Everything is plain JSON data, so suites are
// diffable, committable, and fuzzable; Compile turns a Scenario into the
// attack.Scenario the simulator already understands.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"roboads/internal/attack"
	"roboads/internal/mat"
)

// Version is the current scenario DSL version.
const Version = 1

// MaxIterations is the default per-mission iteration cap, matching the
// evaluation harness (eval.MaxIterations).
const MaxIterations = 700

// Suite is one scenario-suite document.
type Suite struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Seed is the base simulation seed; trial t of every scenario runs
	// with Seed+t. The generator also derives its sweep draws from it.
	Seed      int64      `json:"seed"`
	Scenarios []Scenario `json:"scenarios"`
}

// Scenario is one mission under a composed attack schedule.
type Scenario struct {
	Name string `json:"name"`
	// Class is the attacker-taxonomy tag: "clean", "table2", "tamiya",
	// "stealthy", "coordinated", "intermittent", "ramp", "environment",
	// or "fuzz". Informational — it labels leaderboard rows.
	Class string `json:"class,omitempty"`
	// Robot selects the platform profile: "khepera" or "tamiya".
	Robot string `json:"robot"`
	// World selects the arena: "lab" (default) or "warehouse".
	World string `json:"world,omitempty"`
	// Iterations caps the mission; 0 means MaxIterations.
	Iterations int      `json:"iterations,omitempty"`
	Attacks    []Attack `json:"attacks,omitempty"`
}

// Envelope shapes one attack over time (attack.Envelope in DSL form).
type Envelope struct {
	// Start is the onset iteration.
	Start int `json:"start"`
	// End bounds the activation half-open; 0 means forever.
	End int `json:"end,omitempty"`
	// Ramp linearly grows the magnitude over this many iterations.
	Ramp int `json:"ramp,omitempty"`
	// Period > 1 pulses the attack with the given Duty fraction on.
	Period int     `json:"period,omitempty"`
	Duty   float64 `json:"duty,omitempty"`
}

// Attack is one corruption in a scenario's schedule. Kind selects the
// primitive; the other fields are kind-specific parameters.
type Attack struct {
	// Kind is one of: bias, ramp-bias, zero, override, encoder-ticks,
	// occlusion (sensor side); actuator-bias, actuator-scale,
	// actuator-override, wheel-slip (actuator side).
	Kind string `json:"kind"`
	// Sensor targets a sensing workflow (sensor kinds only).
	Sensor string `json:"sensor,omitempty"`
	// Offset is the bias/ramp-rate vector (bias, ramp-bias,
	// actuator-bias).
	Offset []float64 `json:"offset,omitempty"`
	// Index and Value parameterize override/actuator-override; Index
	// also selects the actuator-scale component.
	Index int     `json:"index,omitempty"`
	Value float64 `json:"value,omitempty"`
	// Wheel, Ticks, PerIteration parameterize encoder-ticks.
	Wheel        int     `json:"wheel,omitempty"`
	Ticks        float64 `json:"ticks,omitempty"`
	PerIteration bool    `json:"perIteration,omitempty"`
	// Factor parameterizes actuator-scale.
	Factor float64 `json:"factor,omitempty"`
	// Distance and Beams parameterize occlusion.
	Distance float64 `json:"distance,omitempty"`
	Beams    []int   `json:"beams,omitempty"`
	// Slip and Wheels parameterize wheel-slip.
	Slip   float64 `json:"slip,omitempty"`
	Wheels []int   `json:"wheels,omitempty"`
	// Via is the originating channel: "physical", "cyber", or
	// "environment". Defaults per kind (occlusion/wheel-slip →
	// environment, others → cyber).
	Via      string   `json:"via,omitempty"`
	Envelope Envelope `json:"envelope"`
}

// sensorKind reports whether the kind corrupts a sensing workflow.
func sensorKind(kind string) bool {
	switch kind {
	case "bias", "ramp-bias", "zero", "override", "encoder-ticks", "occlusion":
		return true
	}
	return false
}

// shapedKind reports whether the kind supports ramp/period envelopes.
func shapedKind(kind string) bool {
	switch kind {
	case "bias", "actuator-bias", "wheel-slip":
		return true
	case "occlusion":
		return true // period only; ramp rejected in validate
	}
	return false
}

// robotSensors lists the valid sensor targets per platform, in suite
// order.
var robotSensors = map[string][]string{
	"khepera": {"ips", "wheel-encoder", "lidar"},
	"tamiya":  {"ips", "lidar", "imu"},
}

// Decode parses and validates a DSL document.
func Decode(data []byte) (*Suite, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Suite
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the suite against the DSL's invariants.
func (s *Suite) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("scenario: unsupported DSL version %d (want %d)", s.Version, Version)
	}
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("scenario: suite %q has no scenarios", s.Name)
	}
	seen := make(map[string]bool, len(s.Scenarios))
	for i := range s.Scenarios {
		sc := &s.Scenarios[i]
		if sc.Name == "" {
			return fmt.Errorf("scenario: scenario %d has no name", i)
		}
		if seen[sc.Name] {
			return fmt.Errorf("scenario: duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	}
	return nil
}

func (sc *Scenario) validate() error {
	sensorsFor, ok := robotSensors[sc.Robot]
	if !ok {
		return fmt.Errorf("unknown robot %q (want khepera or tamiya)", sc.Robot)
	}
	switch sc.World {
	case "", "lab", "warehouse":
	default:
		return fmt.Errorf("unknown world %q (want lab or warehouse)", sc.World)
	}
	if sc.Iterations < 0 || sc.Iterations > 100_000 {
		return fmt.Errorf("iterations %d out of range [0, 100000]", sc.Iterations)
	}
	for i := range sc.Attacks {
		if err := sc.Attacks[i].validate(sc.Robot, sensorsFor); err != nil {
			return fmt.Errorf("attack %d (%s): %w", i, sc.Attacks[i].Kind, err)
		}
	}
	return nil
}

func (a *Attack) validate(robotName string, sensorsFor []string) error {
	e := a.Envelope
	if e.Start < 0 {
		return fmt.Errorf("envelope start %d < 0", e.Start)
	}
	if e.End != 0 && e.End <= e.Start {
		return fmt.Errorf("envelope end %d ≤ start %d", e.End, e.Start)
	}
	if e.Ramp < 0 || e.Period < 0 {
		return fmt.Errorf("negative ramp/period")
	}
	if e.Period > 1 && (e.Duty <= 0 || e.Duty > 1) {
		return fmt.Errorf("duty %v out of (0, 1] with period %d", e.Duty, e.Period)
	}
	if e.Period <= 1 && e.Duty != 0 {
		return fmt.Errorf("duty without period")
	}
	if (e.Ramp > 1 || e.Period > 1) && !shapedKind(a.Kind) {
		return fmt.Errorf("kind does not support ramp/period envelopes")
	}
	if a.Kind == "occlusion" && e.Ramp > 1 {
		return fmt.Errorf("occlusion does not support ramp")
	}
	switch a.Via {
	case "", "physical", "cyber", "environment":
	default:
		return fmt.Errorf("unknown channel %q", a.Via)
	}
	for _, v := range a.Offset {
		if !finite(v) {
			return fmt.Errorf("non-finite offset component")
		}
	}
	for _, v := range []float64{a.Value, a.Ticks, a.Factor, a.Distance, a.Slip} {
		if !finite(v) {
			return fmt.Errorf("non-finite parameter")
		}
	}
	if sensorKind(a.Kind) {
		target := a.Sensor
		if a.Kind == "encoder-ticks" {
			target = "wheel-encoder"
		}
		valid := false
		for _, s := range sensorsFor {
			if s == target {
				valid = true
			}
		}
		if !valid {
			return fmt.Errorf("sensor %q not in %s suite %v", target, robotName, sensorsFor)
		}
	}
	switch a.Kind {
	case "bias", "ramp-bias":
		if len(a.Offset) == 0 {
			return fmt.Errorf("missing offset")
		}
	case "zero":
	case "override":
		if a.Index < 0 || a.Index > 16 {
			return fmt.Errorf("index %d out of range", a.Index)
		}
	case "encoder-ticks":
		if a.Wheel != 0 && a.Wheel != 1 {
			return fmt.Errorf("wheel %d (want 0 or 1)", a.Wheel)
		}
	case "occlusion":
		if a.Distance <= 0 {
			return fmt.Errorf("distance %v ≤ 0", a.Distance)
		}
		if len(a.Beams) == 0 {
			return fmt.Errorf("missing beams")
		}
		for _, b := range a.Beams {
			if b < 0 || b > 16 {
				return fmt.Errorf("beam %d out of range", b)
			}
		}
	case "actuator-bias":
		if len(a.Offset) == 0 {
			return fmt.Errorf("missing offset")
		}
	case "actuator-scale":
		if a.Index < 0 || a.Index > 16 {
			return fmt.Errorf("index %d out of range", a.Index)
		}
	case "actuator-override":
		if a.Index < 0 || a.Index > 16 {
			return fmt.Errorf("index %d out of range", a.Index)
		}
	case "wheel-slip":
		if a.Slip < 0 || a.Slip > 1 {
			return fmt.Errorf("slip %v out of [0, 1]", a.Slip)
		}
		if len(a.Wheels) == 0 {
			return fmt.Errorf("missing wheels")
		}
		for _, w := range a.Wheels {
			if w < 0 || w > 16 {
				return fmt.Errorf("wheel index %d out of range", w)
			}
		}
	default:
		return fmt.Errorf("unknown kind")
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// channelOf maps the DSL channel string to the attack.Channel, applying
// the per-kind default.
func channelOf(via, kind string) attack.Channel {
	switch via {
	case "physical":
		return attack.Physical
	case "cyber":
		return attack.Cyber
	case "environment":
		return attack.Environment
	}
	switch kind {
	case "occlusion", "wheel-slip":
		return attack.Environment
	}
	return attack.Cyber
}

func channelName(c attack.Channel) string { return c.String() }

// Compile lowers the scenario to the attack.Scenario the simulator
// executes. A plain window (no ramp, no period) compiles to the same
// primitive Table II uses, so DSL-driven runs are bit-for-bit the
// hardcoded ones.
func (sc *Scenario) Compile(id int) (attack.Scenario, error) {
	out := attack.Scenario{ID: id, Name: sc.Name, Description: sc.Class}
	for i := range sc.Attacks {
		a := &sc.Attacks[i]
		win := attack.Window{Start: a.Envelope.Start, End: a.Envelope.End}
		env := attack.Envelope{Win: win, Ramp: a.Envelope.Ramp, Period: a.Envelope.Period, Duty: a.Envelope.Duty}
		shaped := a.Envelope.Ramp > 1 || a.Envelope.Period > 1
		via := channelOf(a.Via, a.Kind)
		switch a.Kind {
		case "bias":
			if shaped {
				out.SensorAttacks = append(out.SensorAttacks,
					&attack.ShapedBias{Sensor: a.Sensor, Offset: mat.Vec(a.Offset).Clone(), Env: env, Via: via})
			} else {
				out.SensorAttacks = append(out.SensorAttacks,
					&attack.Bias{Sensor: a.Sensor, Offset: mat.Vec(a.Offset).Clone(), Win: win, Via: via})
			}
		case "ramp-bias":
			out.SensorAttacks = append(out.SensorAttacks,
				&attack.RampBias{Sensor: a.Sensor, RatePerIteration: mat.Vec(a.Offset).Clone(), Win: win, Via: via})
		case "zero":
			out.SensorAttacks = append(out.SensorAttacks,
				&attack.Zero{Sensor: a.Sensor, Win: win, Via: via})
		case "override":
			out.SensorAttacks = append(out.SensorAttacks,
				&attack.Override{Sensor: a.Sensor, Index: a.Index, Value: a.Value, Win: win, Via: via})
		case "encoder-ticks":
			out.SensorAttacks = append(out.SensorAttacks,
				&attack.EncoderTicks{Wheel: a.Wheel, Ticks: a.Ticks, PerIteration: a.PerIteration, Win: win, Via: via})
		case "occlusion":
			out.SensorAttacks = append(out.SensorAttacks,
				&attack.Occlusion{Sensor: a.Sensor, Beams: append([]int(nil), a.Beams...), Distance: a.Distance, Env: env, Via: via})
		case "actuator-bias":
			if shaped {
				out.ActuatorAttacks = append(out.ActuatorAttacks,
					&attack.ShapedActuatorBias{Offset: mat.Vec(a.Offset).Clone(), Env: env, Via: via})
			} else {
				out.ActuatorAttacks = append(out.ActuatorAttacks,
					&attack.ActuatorBias{Offset: mat.Vec(a.Offset).Clone(), Win: win, Via: via})
			}
		case "actuator-scale":
			out.ActuatorAttacks = append(out.ActuatorAttacks,
				&attack.ActuatorScale{Index: a.Index, Factor: a.Factor, Win: win, Via: via})
		case "actuator-override":
			out.ActuatorAttacks = append(out.ActuatorAttacks,
				&attack.ActuatorOverride{Index: a.Index, Value: a.Value, Win: win, Via: via})
		case "wheel-slip":
			out.ActuatorAttacks = append(out.ActuatorAttacks,
				&attack.WheelSlip{Slip: a.Slip, Wheels: append([]int(nil), a.Wheels...), Env: env, Via: via})
		default:
			return attack.Scenario{}, fmt.Errorf("scenario %q: unknown attack kind %q", sc.Name, a.Kind)
		}
	}
	return out, nil
}

// FromScenario lifts a hardcoded attack.Scenario (Table II, Tamiya §V-D)
// into the DSL, so generated suites stay in lockstep with the canonical
// scenario definitions instead of duplicating their magnitudes.
func FromScenario(s attack.Scenario, robotName, class string) (Scenario, error) {
	out := Scenario{Name: s.Name, Class: class, Robot: robotName}
	for _, a := range s.SensorAttacks {
		var d Attack
		switch t := a.(type) {
		case *attack.Bias:
			d = Attack{Kind: "bias", Sensor: t.Sensor, Offset: t.Offset,
				Envelope: Envelope{Start: t.Win.Start, End: t.Win.End}, Via: channelName(t.Via)}
		case *attack.RampBias:
			d = Attack{Kind: "ramp-bias", Sensor: t.Sensor, Offset: t.RatePerIteration,
				Envelope: Envelope{Start: t.Win.Start, End: t.Win.End}, Via: channelName(t.Via)}
		case *attack.Zero:
			d = Attack{Kind: "zero", Sensor: t.Sensor,
				Envelope: Envelope{Start: t.Win.Start, End: t.Win.End}, Via: channelName(t.Via)}
		case *attack.Override:
			d = Attack{Kind: "override", Sensor: t.Sensor, Index: t.Index, Value: t.Value,
				Envelope: Envelope{Start: t.Win.Start, End: t.Win.End}, Via: channelName(t.Via)}
		case *attack.EncoderTicks:
			d = Attack{Kind: "encoder-ticks", Wheel: t.Wheel, Ticks: t.Ticks, PerIteration: t.PerIteration,
				Envelope: Envelope{Start: t.Win.Start, End: t.Win.End}, Via: channelName(t.Via)}
		case *attack.ShapedBias:
			d = Attack{Kind: "bias", Sensor: t.Sensor, Offset: t.Offset,
				Envelope: Envelope{Start: t.Env.Win.Start, End: t.Env.Win.End, Ramp: t.Env.Ramp, Period: t.Env.Period, Duty: t.Env.Duty},
				Via:      channelName(t.Via)}
		case *attack.Occlusion:
			d = Attack{Kind: "occlusion", Sensor: t.Sensor, Beams: t.Beams, Distance: t.Distance,
				Envelope: Envelope{Start: t.Env.Win.Start, End: t.Env.Win.End, Period: t.Env.Period, Duty: t.Env.Duty},
				Via:      channelName(t.Via)}
		default:
			return Scenario{}, fmt.Errorf("scenario %q: no DSL form for sensor attack %T", s.Name, a)
		}
		out.Attacks = append(out.Attacks, d)
	}
	for _, a := range s.ActuatorAttacks {
		var d Attack
		switch t := a.(type) {
		case *attack.ActuatorBias:
			d = Attack{Kind: "actuator-bias", Offset: t.Offset,
				Envelope: Envelope{Start: t.Win.Start, End: t.Win.End}, Via: channelName(t.Via)}
		case *attack.ActuatorScale:
			d = Attack{Kind: "actuator-scale", Index: t.Index, Factor: t.Factor,
				Envelope: Envelope{Start: t.Win.Start, End: t.Win.End}, Via: channelName(t.Via)}
		case *attack.ActuatorOverride:
			d = Attack{Kind: "actuator-override", Index: t.Index, Value: t.Value,
				Envelope: Envelope{Start: t.Win.Start, End: t.Win.End}, Via: channelName(t.Via)}
		case *attack.ShapedActuatorBias:
			d = Attack{Kind: "actuator-bias", Offset: t.Offset,
				Envelope: Envelope{Start: t.Env.Win.Start, End: t.Env.Win.End, Ramp: t.Env.Ramp, Period: t.Env.Period, Duty: t.Env.Duty},
				Via:      channelName(t.Via)}
		case *attack.WheelSlip:
			d = Attack{Kind: "wheel-slip", Slip: t.Slip, Wheels: t.Wheels,
				Envelope: Envelope{Start: t.Env.Win.Start, End: t.Env.Win.End, Ramp: t.Env.Ramp, Period: t.Env.Period, Duty: t.Env.Duty},
				Via:      channelName(t.Via)}
		default:
			return Scenario{}, fmt.Errorf("scenario %q: no DSL form for actuator attack %T", s.Name, a)
		}
		out.Attacks = append(out.Attacks, d)
	}
	return out, nil
}

// Encode renders the suite as the canonical indented JSON document.
func (s *Suite) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Hash fingerprints the canonical encoding — the leaderboard Config's
// suite identity.
func (s *Suite) Hash() (string, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	var h uint64 = 14695981039346656037 // FNV-1a 64
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h), nil
}
