package scenario

import (
	"fmt"
	"sync"

	"roboads/internal/attack"
	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/mat"
	"roboads/internal/metrics"
	"roboads/internal/robot"
	"roboads/internal/sim"
	"roboads/internal/world"
)

// RunConfig shapes suite execution. Every setting is throughput-only:
// by the engine-batch and worker-determinism contracts, results are
// bit-for-bit identical across all Workers/Batch values.
type RunConfig struct {
	// Trials runs each scenario this many times with seeds
	// Seed, Seed+1, ...; 0 means 1.
	Trials int
	// Workers runs that many missions concurrently; 0/1 is sequential.
	Workers int
	// Batch > 1 co-steps up to that many missions' detectors through
	// detect.DetectorBatch (core.EngineBatch underneath); mismatched
	// profiles in a group fall back to scalar stepping per slot.
	Batch int
}

// TargetStats is one attacked target's outcome in a scenario,
// aggregated over trials. The target is a sensor workflow name or
// "actuator".
type TargetStats struct {
	// Onset is the attack-onset iteration (trial 0).
	Onset int `json:"onset"`
	// DelaySec is the mean onset-to-confirmation delay over detected
	// trials, −1 when no trial detected it.
	DelaySec float64 `json:"delaySec"`
	// AlarmFraction is the mean fraction of post-onset iterations with
	// this target confirmed.
	AlarmFraction float64 `json:"alarmFraction"`
	// Missed counts trials where the target was never confirmed
	// post-onset.
	Missed int `json:"missed"`
}

// Result is one scenario's outcome aggregated over its trials.
type Result struct {
	Name       string `json:"name"`
	Class      string `json:"class,omitempty"`
	Robot      string `json:"robot"`
	Trials     int    `json:"trials"`
	Iterations int    `json:"iterations"` // total across trials
	// SensorConfusion and ActuatorConfusion merge the per-iteration
	// identification-aware accounting across trials.
	SensorConfusion   metrics.Confusion `json:"sensorConfusion"`
	ActuatorConfusion metrics.Confusion `json:"actuatorConfusion"`
	// Targets maps each attacked sensor (and "actuator") to its stats.
	Targets map[string]TargetStats `json:"targets,omitempty"`
	// MeanDelaySec averages over all detected (target, trial) pairs;
	// −1 when none detected (or nothing was attacked).
	MeanDelaySec float64 `json:"meanDelaySec"`
	// Missed counts (target, trial) pairs never detected.
	Missed int `json:"missed"`

	delaySum float64 // detected delay seconds, for suite aggregation
	detected int
}

// SuiteResult is a full suite run.
type SuiteResult struct {
	Suite   string   `json:"suite"`
	Seed    int64    `json:"seed"`
	Trials  int      `json:"trials"`
	Results []Result `json:"results"`
	// Suite-level merges of every scenario's confusion counts.
	SensorConfusion   metrics.Confusion `json:"sensorConfusion"`
	ActuatorConfusion metrics.Confusion `json:"actuatorConfusion"`
	// AvgDelaySec averages over all detected (target, trial) pairs in
	// the suite; −1 when none.
	AvgDelaySec float64 `json:"avgDelaySec"`
	Missed      int     `json:"missed"`
}

// missionFor maps a DSL world name to its mission. The warehouse mission
// matches the long-route shape exercised by the simulator tests.
func missionFor(w string) sim.Mission {
	if w == "warehouse" {
		return sim.Mission{
			Map:          world.WarehouseArena(),
			Start:        world.Point{X: 0.6, Y: 0.6},
			StartHeading: 0.4,
			Goal:         world.Point{X: 7.2, Y: 5.4},
		}
	}
	return sim.LabMission()
}

// iterRec is the per-iteration evidence the stats need — a compact
// subset of eval.IterationTrace.
type iterRec struct {
	truth         attack.Truth
	condSensors   []string
	sensorAlarm   bool
	actuatorAlarm bool
	daValid       bool
}

// missionRun is one (scenario, trial) mission in flight.
type missionRun struct {
	compiled attack.Scenario
	step     func() (*sim.StepRecord, error)
	det      *detect.Detector
	dt       float64
	cap      int
	trace    []iterRec
	finished bool
}

// newMissionRun builds the simulator and detector for one trial,
// mirroring eval.RunKheperaScenario's construction exactly: the same
// mission, the same seed handling, and Profile.NewDetector with the
// default engine and §V-F decision parameters.
func newMissionRun(sc *Scenario, seed int64) (*missionRun, error) {
	compiled, err := sc.Compile(1000)
	if err != nil {
		return nil, err
	}
	mr := &missionRun{compiled: compiled, cap: sc.Iterations}
	if mr.cap <= 0 {
		mr.cap = MaxIterations
	}
	mission := missionFor(sc.World)
	var prof robot.Profile
	switch sc.Robot {
	case "khepera":
		setup, err := sim.NewKhepera(mission, &mr.compiled, seed)
		if err != nil {
			return nil, fmt.Errorf("scenario %q seed %d: %w", sc.Name, seed, err)
		}
		prof = robot.Khepera(setup)
		mr.step = setup.Sim.Step
		mr.dt = sim.KheperaDt
	case "tamiya":
		setup, err := sim.NewTamiya(mission, &mr.compiled, seed)
		if err != nil {
			return nil, fmt.Errorf("scenario %q seed %d: %w", sc.Name, seed, err)
		}
		prof = robot.Tamiya(setup)
		mr.step = setup.Sim.Step
		mr.dt = sim.TamiyaDt
	default:
		return nil, fmt.Errorf("scenario %q: unknown robot %q", sc.Name, sc.Robot)
	}
	mr.det, err = prof.NewDetector(core.DefaultEngineConfig(), detect.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return mr, nil
}

// record appends one stepped iteration.
func (mr *missionRun) record(rec *sim.StepRecord, rep *detect.Report) {
	mr.trace = append(mr.trace, iterRec{
		truth:         rec.Truth,
		condSensors:   rep.Decision.Condition.Sensors,
		sensorAlarm:   rep.Decision.SensorAlarm,
		actuatorAlarm: rep.Decision.ActuatorAlarm,
		daValid:       rep.Engine.Result.DaValid,
	})
	if rec.Done || len(mr.trace) >= mr.cap {
		mr.finished = true
	}
}

// runScalar drives the mission to completion through the scalar
// detector path — the exact loop of eval.RunKheperaScenario.
func (mr *missionRun) runScalar() error {
	for !mr.finished {
		rec, err := mr.step()
		if err != nil {
			break // mission over
		}
		rep, err := mr.det.Step(rec.UPlanned, rec.Readings)
		if err != nil {
			return fmt.Errorf("scenario %q k=%d: %w", mr.compiled.Name, rec.K, err)
		}
		mr.record(rec, rep)
	}
	return nil
}

// runGroup lockstep-steps a group of missions through one
// detect.DetectorBatch built on the first mission's detector. Profiles
// that don't match the prototype's batch key fall back to scalar
// stepping inside the batch — bit-for-bit either way.
func runGroup(group []*missionRun) error {
	if len(group) == 1 {
		return group[0].runScalar()
	}
	db, err := detect.NewDetectorBatch(group[0].det, len(group))
	if err != nil {
		return err
	}
	dets := make([]*detect.Detector, 0, len(group))
	us := make([]mat.Vec, 0, len(group))
	readings := make([]map[string]mat.Vec, 0, len(group))
	recs := make([]*sim.StepRecord, 0, len(group))
	live := make([]*missionRun, 0, len(group))
	for {
		dets, us, readings, recs, live = dets[:0], us[:0], readings[:0], recs[:0], live[:0]
		for _, mr := range group {
			if mr.finished {
				continue
			}
			rec, err := mr.step()
			if err != nil {
				mr.finished = true // mission over
				continue
			}
			live = append(live, mr)
			dets = append(dets, mr.det)
			us = append(us, rec.UPlanned)
			readings = append(readings, rec.Readings)
			recs = append(recs, rec)
		}
		if len(live) == 0 {
			return nil
		}
		reports, errs := db.Step(dets, us, readings)
		for i, mr := range live {
			if errs[i] != nil {
				return fmt.Errorf("scenario %q k=%d: %w", mr.compiled.Name, recs[i].K, errs[i])
			}
			mr.record(recs[i], reports[i])
		}
	}
}

// trialStats is one trial's measurements.
type trialStats struct {
	iterations int
	sensor     metrics.Confusion
	actuator   metrics.Confusion
	onsets     map[string]int // target → onset iteration (-1: never active)
	delays     map[string]metrics.Delay
	fractions  map[string]float64
	dt         float64
}

func truthEqual(truth attack.Truth, detected []string) bool {
	if len(truth.CorruptedSensors) != len(detected) {
		return false
	}
	for _, s := range detected {
		if !truth.CorruptedSensors[s] {
			return false
		}
	}
	return true
}

// stats reduces a finished mission to its measurements, replicating
// eval.Run's identification-aware definitions exactly: SensorConfusion,
// ActuatorConfusion (skipping unobservable iterations), SensorDelays
// (first window per target), ActuatorDelay, and the post-onset alarm
// fraction of the §V-H sweep.
func (mr *missionRun) stats() trialStats {
	ts := trialStats{
		iterations: len(mr.trace),
		onsets:     make(map[string]int),
		delays:     make(map[string]metrics.Delay),
		fractions:  make(map[string]float64),
		dt:         mr.dt,
	}
	for _, tr := range mr.trace {
		truthPos := len(tr.truth.CorruptedSensors) > 0
		detPos := tr.sensorAlarm
		correct := detPos && truthEqual(tr.truth, tr.condSensors)
		if detPos && len(tr.condSensors) == 0 {
			detPos = false
		}
		ts.sensor.Add(truthPos, detPos, correct)
		if tr.daValid {
			ts.actuator.Add(tr.truth.ActuatorCorrupted, tr.actuatorAlarm, true)
		}
	}
	for _, a := range mr.compiled.SensorAttacks {
		target := a.Target()
		if _, seen := ts.onsets[target]; seen {
			continue // first window only
		}
		ts.onsets[target] = -1
		for k := range mr.trace {
			if a.Active(k) {
				ts.onsets[target] = k
				break
			}
		}
	}
	if len(mr.compiled.ActuatorAttacks) > 0 {
		onset := -1
		for _, a := range mr.compiled.ActuatorAttacks {
			for k := range mr.trace {
				if a.Active(k) {
					if onset < 0 || k < onset {
						onset = k
					}
					break
				}
			}
		}
		ts.onsets["actuator"] = onset
	}
	for target, onset := range ts.onsets {
		if onset < 0 {
			ts.delays[target] = metrics.Delay{Onset: -1, Detected: -1}
			ts.fractions[target] = 0
			continue
		}
		flags := make([]bool, len(mr.trace))
		hits := 0
		for i, tr := range mr.trace {
			if target == "actuator" {
				flags[i] = tr.actuatorAlarm
			} else {
				for _, s := range tr.condSensors {
					if s == target {
						flags[i] = true
					}
				}
			}
			if i >= onset && flags[i] {
				hits++
			}
		}
		ts.delays[target] = metrics.FirstDetection(onset, flags)
		if total := len(mr.trace) - onset; total > 0 {
			ts.fractions[target] = float64(hits) / float64(total)
		}
	}
	return ts
}

// aggregate folds one scenario's trials into a Result.
func aggregate(sc *Scenario, trials []trialStats) Result {
	r := Result{
		Name:         sc.Name,
		Class:        sc.Class,
		Robot:        sc.Robot,
		Trials:       len(trials),
		Targets:      make(map[string]TargetStats),
		MeanDelaySec: -1,
	}
	for _, ts := range trials {
		r.Iterations += ts.iterations
		r.SensorConfusion.Merge(ts.sensor)
		r.ActuatorConfusion.Merge(ts.actuator)
	}
	if len(trials) == 0 {
		return r
	}
	for target := range trials[0].onsets {
		stats := TargetStats{Onset: trials[0].onsets[target], DelaySec: -1}
		var delays []metrics.Delay
		for _, ts := range trials {
			delays = append(delays, ts.delays[target])
			stats.AlarmFraction += ts.fractions[target]
			if ts.delays[target].Detected < 0 {
				stats.Missed++
			}
		}
		stats.AlarmFraction /= float64(len(trials))
		stats.DelaySec = metrics.MeanDelaySeconds(delays, trials[0].dt)
		for _, d := range delays {
			if d.Detected >= 0 {
				r.delaySum += d.Seconds(trials[0].dt)
				r.detected++
			}
		}
		r.Missed += stats.Missed
		r.Targets[target] = stats
	}
	if r.detected > 0 {
		r.MeanDelaySec = r.delaySum / float64(r.detected)
	}
	return r
}

// RunSuite executes every scenario × trial of the suite and aggregates
// the leaderboard measurements. Results are bit-for-bit reproducible
// from {suite, config trials} and independent of Workers and Batch.
func RunSuite(s *Suite, cfg RunConfig) (*SuiteResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	trials := max(1, cfg.Trials)
	group := max(1, cfg.Batch)
	workers := max(1, cfg.Workers)

	type task struct {
		si, trial int
	}
	var tasks []task
	for si := range s.Scenarios {
		for t := 0; t < trials; t++ {
			tasks = append(tasks, task{si, t})
		}
	}
	// Chunk tasks into batch groups; workers drain groups concurrently.
	// Each mission owns its simulator and detector, so the only shared
	// state is the indexed stats matrix.
	stats := make([][]trialStats, len(s.Scenarios))
	for i := range stats {
		stats[i] = make([]trialStats, trials)
	}
	var groups [][]task
	for start := 0; start < len(tasks); start += group {
		groups = append(groups, tasks[start:min(start+group, len(tasks))])
	}
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for gi, g := range groups {
		wg.Add(1)
		sem <- struct{}{}
		go func(gi int, g []task) {
			defer wg.Done()
			defer func() { <-sem }()
			runs := make([]*missionRun, len(g))
			for i, tk := range g {
				mr, err := newMissionRun(&s.Scenarios[tk.si], s.Seed+int64(tk.trial))
				if err != nil {
					errs[gi] = err
					return
				}
				runs[i] = mr
			}
			if err := runGroup(runs); err != nil {
				errs[gi] = err
				return
			}
			for i, tk := range g {
				stats[tk.si][tk.trial] = runs[i].stats()
			}
		}(gi, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := &SuiteResult{Suite: s.Name, Seed: s.Seed, Trials: trials, AvgDelaySec: -1}
	var delaySum float64
	detected := 0
	for si := range s.Scenarios {
		r := aggregate(&s.Scenarios[si], stats[si])
		out.SensorConfusion.Merge(r.SensorConfusion)
		out.ActuatorConfusion.Merge(r.ActuatorConfusion)
		delaySum += r.delaySum
		detected += r.detected
		out.Missed += r.Missed
		out.Results = append(out.Results, r)
	}
	if detected > 0 {
		out.AvgDelaySec = delaySum / float64(detected)
	}
	return out, nil
}

// RunOne executes a single scenario with the given base seed and
// returns its aggregated Result — the entry point the §V-H evasive
// sweep drives.
func RunOne(sc Scenario, seed int64, cfg RunConfig) (*Result, error) {
	suite := &Suite{Version: Version, Name: "one", Seed: seed, Scenarios: []Scenario{sc}}
	res, err := RunSuite(suite, cfg)
	if err != nil {
		return nil, err
	}
	return &res.Results[0], nil
}
