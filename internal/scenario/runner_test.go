package scenario_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"roboads/internal/attack"
	"roboads/internal/detect"
	"roboads/internal/eval"
	"roboads/internal/scenario"
)

// smallSuite is a fast mixed workload: a plain Table II-style bias, an
// intermittent pulse, an environment anomaly, and a clean mission.
func smallSuite(seed int64) *scenario.Suite {
	return &scenario.Suite{
		Version: scenario.Version,
		Name:    "small",
		Seed:    seed,
		Scenarios: []scenario.Scenario{
			{Name: "clean", Class: "clean", Robot: "khepera", Iterations: 150},
			{Name: "ips-bias", Class: "table2", Robot: "khepera", Iterations: 200,
				Attacks: []scenario.Attack{{
					Kind: "bias", Sensor: detect.SensorIPS, Offset: []float64{0.07, 0, 0},
					Via: "cyber", Envelope: scenario.Envelope{Start: 60},
				}}},
			{Name: "pulsed-ips", Class: "intermittent", Robot: "khepera", Iterations: 200,
				Attacks: []scenario.Attack{{
					Kind: "bias", Sensor: detect.SensorIPS, Offset: []float64{0.07, 0, 0},
					Via: "physical", Envelope: scenario.Envelope{Start: 60, Period: 40, Duty: 0.5},
				}}},
			{Name: "slip", Class: "environment", Robot: "khepera", Iterations: 220,
				Attacks: []scenario.Attack{{
					Kind: "wheel-slip", Slip: 0.5, Wheels: []int{0},
					Via: "environment", Envelope: scenario.Envelope{Start: 80, Ramp: 30},
				}}},
		},
	}
}

// TestSuiteReproducible pins the acceptance contract: a suite run is
// bit-for-bit reproducible from {seed, DSL}, including through a JSON
// round trip of the document.
func TestSuiteReproducible(t *testing.T) {
	s1 := smallSuite(9)
	data, err := s1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := scenario.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := scenario.RunSuite(s1, scenario.RunConfig{Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := scenario.RunSuite(s2, scenario.RunConfig{Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if string(j1) != string(j2) {
		t.Fatalf("suite run not reproducible:\n%s\n%s", j1, j2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("suite results differ structurally")
	}
}

// TestSuiteWorkersAndBatchDeterminism pins that Workers and Batch are
// throughput-only: concurrent and engine-batched execution produce the
// sequential scalar result bit-for-bit.
func TestSuiteWorkersAndBatchDeterminism(t *testing.T) {
	base, err := scenario.RunSuite(smallSuite(4), scenario.RunConfig{Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []scenario.RunConfig{
		{Trials: 2, Workers: 4},
		{Trials: 2, Batch: 3},
		{Trials: 2, Workers: 2, Batch: 4},
	} {
		got, err := scenario.RunSuite(smallSuite(4), cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if !reflect.DeepEqual(base, got) {
			b1, _ := json.Marshal(base)
			b2, _ := json.Marshal(got)
			t.Fatalf("%+v diverged from sequential:\n%s\n%s", cfg, b1, b2)
		}
	}
}

// TestRunnerMatchesEvalHarness pins the runner against the historical
// evaluation harness: a Table II scenario lifted through the DSL must
// reproduce eval.RunKheperaScenario's confusion counts and delay
// exactly.
func TestRunnerMatchesEvalHarness(t *testing.T) {
	orig := attack.KheperaScenarios()[2] // #3 IPS logic bomb
	const seed = 21
	run, err := eval.RunKheperaScenario(orig, seed, detect.DefaultConfig(), eval.KheperaDetector)
	if err != nil {
		t.Fatal(err)
	}
	dsl, err := scenario.FromScenario(orig, "khepera", "table2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.RunOne(dsl, seed, scenario.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SensorConfusion != run.SensorConfusion() {
		t.Errorf("sensor confusion %v != eval %v", res.SensorConfusion, run.SensorConfusion())
	}
	if res.ActuatorConfusion != run.ActuatorConfusion() {
		t.Errorf("actuator confusion %v != eval %v", res.ActuatorConfusion, run.ActuatorConfusion())
	}
	wantDelay := run.SensorDelays()[detect.SensorIPS].Seconds(run.Dt)
	if got := res.Targets[detect.SensorIPS].DelaySec; got != wantDelay {
		t.Errorf("delay %v != eval %v", got, wantDelay)
	}
	if res.Iterations != len(run.Trace) {
		t.Errorf("iterations %d != eval %d", res.Iterations, len(run.Trace))
	}
}

// TestWarehouseScenarioRuns exercises the world × scenario composition:
// the warehouse mission must execute with an active schedule and produce
// actuator-positive ground truth.
func TestWarehouseScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("long mission")
	}
	sc := scenario.Scenario{
		Name: "wh", Class: "environment", Robot: "khepera", World: "warehouse",
		Iterations: 400,
		Attacks: []scenario.Attack{{
			Kind: "wheel-slip", Slip: 0.4, Wheels: []int{0},
			Via: "environment", Envelope: scenario.Envelope{Start: 100, Ramp: 30},
		}},
	}
	res, err := scenario.RunOne(sc, 2, scenario.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 300 {
		t.Fatalf("warehouse mission too short: %d iterations", res.Iterations)
	}
	if !res.ActuatorConfusion.HasPositives() {
		t.Fatal("wheel slip produced no actuator-positive iterations")
	}
	if _, ok := res.Targets["actuator"]; !ok {
		t.Fatal("no actuator target stats")
	}
}

// TestRecordConversion checks the leaderboard record shape.
func TestRecordConversion(t *testing.T) {
	s := smallSuite(3)
	res, err := scenario.RunSuite(s, scenario.RunConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := res.Record(s, "test", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Config.Suite != "small" || rec.Config.Scenarios != 4 || rec.Config.Seed != 3 {
		t.Fatalf("bad config: %+v", rec.Config)
	}
	if rec.Config.SuiteHash == "" {
		t.Fatal("missing suite hash")
	}
	if len(rec.Results.Scenarios) != 4 {
		t.Fatalf("rows = %d, want 4", len(rec.Results.Scenarios))
	}
	var biasRow bool
	for _, row := range rec.Results.Scenarios {
		if row.Name == "ips-bias" {
			biasRow = true
			if row.DelaySec[detect.SensorIPS] < 0 {
				t.Errorf("ips-bias not detected: %+v", row)
			}
		}
	}
	if !biasRow {
		t.Fatal("missing ips-bias row")
	}
}
