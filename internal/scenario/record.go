package scenario

import (
	"runtime"
	"time"

	"roboads/internal/benchquality"
)

// Record converts a suite run into a BENCH_quality.json leaderboard
// record. The Config embeds the suite hash, so the record is only ever
// compared against baselines produced from the identical DSL document.
func (r *SuiteResult) Record(s *Suite, label string, wallSeconds float64) (*benchquality.Record, error) {
	hash, err := s.Hash()
	if err != nil {
		return nil, err
	}
	rec := &benchquality.Record{
		Label:      label,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Config: benchquality.Config{
			Suite:     s.Name,
			SuiteHash: hash,
			Seed:      s.Seed,
			Trials:    r.Trials,
			Scenarios: len(s.Scenarios),
		},
		Env: benchquality.Env{
			Go:     runtime.Version(),
			OS:     runtime.GOOS,
			Arch:   runtime.GOARCH,
			NumCPU: runtime.NumCPU(),
		},
		Results: benchquality.Results{
			AvgSensorFPR:   r.SensorConfusion.FPR(),
			AvgSensorFNR:   r.SensorConfusion.FNR(),
			AvgActuatorFPR: r.ActuatorConfusion.FPR(),
			AvgActuatorFNR: r.ActuatorConfusion.FNR(),
			AvgDelaySec:    r.AvgDelaySec,
			Missed:         r.Missed,
			WallSeconds:    wallSeconds,
		},
	}
	for i := range r.Results {
		res := &r.Results[i]
		row := benchquality.ScenarioRow{
			Name:         res.Name,
			Class:        res.Class,
			Robot:        res.Robot,
			Trials:       res.Trials,
			SensorFPR:    res.SensorConfusion.FPR(),
			SensorFNR:    res.SensorConfusion.FNR(),
			ActuatorFPR:  res.ActuatorConfusion.FPR(),
			ActuatorFNR:  res.ActuatorConfusion.FNR(),
			MeanDelaySec: res.MeanDelaySec,
			Missed:       res.Missed,
		}
		if len(res.Targets) > 0 {
			row.DelaySec = make(map[string]float64, len(res.Targets))
			row.AlarmFraction = make(map[string]float64, len(res.Targets))
			for target, ts := range res.Targets {
				row.DelaySec[target] = ts.DelaySec
				row.AlarmFraction[target] = ts.AlarmFraction
			}
		}
		rec.Results.Scenarios = append(rec.Results.Scenarios, row)
	}
	return rec, nil
}
