package scenario

import (
	"fmt"

	"roboads/internal/attack"
	"roboads/internal/detect"
	"roboads/internal/stat"
)

// Default returns the canonical coverage suite: the clean baseline, all
// eleven Table II scenarios plus the tire blowout, the Tamiya §V-D
// suite (lifted through FromScenario so magnitudes stay in lockstep with
// internal/attack), and the new adversary classes of ROADMAP item 4 —
// stealthy sub-threshold shaping, coordinated multi-sensor + actuator
// campaigns, intermittent and slow-ramp injections, and environment
// anomalies (occlusion, wheel slip, including one in the warehouse
// arena).
func Default(seed int64) (*Suite, error) {
	s := &Suite{Version: Version, Name: "default", Seed: seed}
	add := func(sc Scenario, err error) error {
		if err != nil {
			return err
		}
		s.Scenarios = append(s.Scenarios, sc)
		return nil
	}
	// Leaderboard names prefix the canonical scenario ID: Table II rows
	// collide across platforms ("IPS spoofing" is both #4 and #103).
	lift := func(k attack.Scenario, robot, class string) (Scenario, error) {
		sc, err := FromScenario(k, robot, class)
		sc.Name = fmt.Sprintf("%s-%02d %s", class, k.ID, k.Name)
		return sc, err
	}
	if err := add(FromScenario(attack.CleanScenario(), "khepera", "clean")); err != nil {
		return nil, err
	}
	for _, k := range attack.KheperaScenarios() {
		if err := add(lift(k, "khepera", "table2")); err != nil {
			return nil, err
		}
	}
	if err := add(lift(attack.TireBlowoutScenario(), "khepera", "table2")); err != nil {
		return nil, err
	}
	for _, t := range attack.TamiyaScenarios() {
		if err := add(lift(t, "tamiya", "tamiya")); err != nil {
			return nil, err
		}
	}
	s.Scenarios = append(s.Scenarios, adversaries()...)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: default suite invalid: %w", err)
	}
	return s, nil
}

// adversaries returns the hand-designed hard cases beyond Table II.
func adversaries() []Scenario {
	return []Scenario{
		{
			// Guo et al. 1708.01834: an IPS shift held just under the
			// §V-H stealth envelope (≈0.02 m), ramped in over 5 s so the
			// transient never spikes the test statistic. Expected to stay
			// undetected — the leaderboard pins the miss as the
			// achievable-stealth watermark.
			Name: "stealthy-ips-subthreshold", Class: "stealthy", Robot: "khepera",
			Attacks: []Attack{{
				Kind: "bias", Sensor: detect.SensorIPS, Offset: []float64{0.012, 0, 0},
				Via: "physical", Envelope: Envelope{Start: 60, Ramp: 50},
			}},
		},
		{
			// The actuator-side §V-H stealth attacker: a wheel bias under
			// the ≈900-unit envelope, ramped over 8 s.
			Name: "stealthy-actuator-subthreshold", Class: "stealthy", Robot: "khepera",
			Attacks: []Attack{{
				Kind: "actuator-bias",
				Offset: []float64{-600 * attack.SpeedUnit, 600 * attack.SpeedUnit},
				Via:    "cyber", Envelope: Envelope{Start: 60, Ramp: 80},
			}},
		},
		{
			// A coordinated campaign staggering three workflows: encoder
			// ticks at 6 s, an IPS shift at 12 s, then a wheel-controller
			// bias at 18 s — the hardest identification case, since the
			// detector must re-attribute as each corruption lands.
			Name: "coordinated-campaign", Class: "coordinated", Robot: "khepera",
			Attacks: []Attack{
				{Kind: "encoder-ticks", Wheel: 0, Ticks: 100, Via: "cyber",
					Envelope: Envelope{Start: 60}},
				{Kind: "bias", Sensor: detect.SensorIPS, Offset: []float64{0.07, 0, 0},
					Via: "cyber", Envelope: Envelope{Start: 120}},
				{Kind: "actuator-bias",
					Offset: []float64{-6000 * attack.SpeedUnit, 6000 * attack.SpeedUnit},
					Via:    "cyber", Envelope: Envelope{Start: 180}},
			},
		},
		{
			// An intermittent IPS spoof pulsing 2 s on / 2 s off, aimed at
			// the decision layer's sliding window: each off-phase drains
			// the alarm criteria before the next pulse.
			Name: "intermittent-ips", Class: "intermittent", Robot: "khepera",
			Attacks: []Attack{{
				Kind: "bias", Sensor: detect.SensorIPS, Offset: []float64{0.07, 0, 0},
				Via: "physical", Envelope: Envelope{Start: 60, Period: 40, Duty: 0.5},
			}},
		},
		{
			// A slow ramp to a large shift (0.1 m over 20 s): stealth time
			// traded against eventual impact — the detector should fire
			// mid-ramp once the accumulated shift crosses its envelope.
			Name: "ramp-ips", Class: "ramp", Robot: "khepera",
			Attacks: []Attack{{
				Kind: "bias", Sensor: detect.SensorIPS, Offset: []float64{0.1, 0, 0},
				Via: "cyber", Envelope: Envelope{Start: 60, Ramp: 200},
			}},
		},
		{
			// Ji et al. 2204.01146 environment anomaly: an occluder 12 cm
			// in front of the forward and left LiDAR beams.
			Name: "occlusion-lidar", Class: "environment", Robot: "khepera",
			Attacks: []Attack{{
				Kind: "occlusion", Sensor: detect.SensorLidar, Distance: 0.12,
				Beams: []int{0, 1}, Via: "environment", Envelope: Envelope{Start: 60},
			}},
		},
		{
			// Wheel slip: the left wheel loses 45% of its commanded
			// surface speed, worsening over 4 s — an actuator misbehavior
			// with no adversary at all.
			Name: "wheel-slip-left", Class: "environment", Robot: "khepera",
			Attacks: []Attack{{
				Kind: "wheel-slip", Slip: 0.45, Wheels: []int{0},
				Via: "environment", Envelope: Envelope{Start: 60, Ramp: 40},
			}},
		},
		{
			// The same slip on the long warehouse mission: scenario × world
			// composition, and the only default-suite run off the lab map.
			Name: "wheel-slip-warehouse", Class: "environment", Robot: "khepera",
			World: "warehouse", Iterations: 1200,
			Attacks: []Attack{{
				Kind: "wheel-slip", Slip: 0.45, Wheels: []int{0},
				Via: "environment", Envelope: Envelope{Start: 200, Ramp: 40},
			}},
		},
	}
}

// Fuzz appends n deterministically drawn scenarios sweeping the DSL's
// parameter space — randomized kinds, magnitudes, onsets, ramps, and
// duty cycles on the Khepera platform. The draws derive from the suite
// seed, so {seed, n} fully determines the suite.
func Fuzz(s *Suite, n int) error {
	rng := stat.NewRNG(s.Seed).Fork("scenario-fuzz")
	for i := 0; i < n; i++ {
		sc := Scenario{
			Name:  fmt.Sprintf("fuzz-%03d", i),
			Class: "fuzz",
			Robot: "khepera",
		}
		attacks := 1 + rng.IntN(3)
		for j := 0; j < attacks; j++ {
			sc.Attacks = append(sc.Attacks, fuzzAttack(rng))
		}
		s.Scenarios = append(s.Scenarios, sc)
	}
	return s.Validate()
}

func fuzzAttack(rng *stat.RNG) Attack {
	env := Envelope{Start: 40 + rng.IntN(200)}
	if rng.Float64() < 0.3 {
		env.End = env.Start + 50 + rng.IntN(300)
	}
	shape := func() {
		switch rng.IntN(3) {
		case 1:
			env.Ramp = 20 + rng.IntN(180)
		case 2:
			env.Period = 10 + rng.IntN(80)
			env.Duty = 0.25 + 0.5*rng.Float64()
		}
	}
	switch rng.IntN(8) {
	case 0:
		shape()
		mag := 0.005 + 0.1*rng.Float64()
		if rng.Float64() < 0.5 {
			mag = -mag
		}
		axis := rng.IntN(2)
		off := []float64{0, 0, 0}
		off[axis] = mag
		return Attack{Kind: "bias", Sensor: detect.SensorIPS, Offset: off, Via: "physical", Envelope: env}
	case 1:
		rate := (0.0002 + 0.002*rng.Float64())
		return Attack{Kind: "ramp-bias", Sensor: detect.SensorIPS,
			Offset: []float64{rate, 0, 0}, Via: "cyber", Envelope: env}
	case 2:
		return Attack{Kind: "zero", Sensor: detect.SensorLidar, Via: "physical", Envelope: env}
	case 3:
		return Attack{Kind: "encoder-ticks", Wheel: rng.IntN(2), Ticks: float64(20 + rng.IntN(200)),
			PerIteration: rng.Float64() < 0.2, Via: "cyber", Envelope: env}
	case 4:
		shape()
		units := 300 + 5700*rng.Float64()
		return Attack{Kind: "actuator-bias",
			Offset: []float64{-units * attack.SpeedUnit, units * attack.SpeedUnit},
			Via:    "cyber", Envelope: env}
	case 5:
		return Attack{Kind: "actuator-scale", Index: rng.IntN(2), Factor: 0.2 + 0.7*rng.Float64(),
			Via: "physical", Envelope: env}
	case 6:
		if env.Ramp > 1 {
			env.Ramp = 0
		}
		return Attack{Kind: "occlusion", Sensor: detect.SensorLidar,
			Distance: 0.08 + 0.3*rng.Float64(), Beams: []int{rng.IntN(3)},
			Via: "environment", Envelope: env}
	default:
		shape()
		return Attack{Kind: "wheel-slip", Slip: 0.2 + 0.6*rng.Float64(), Wheels: []int{rng.IntN(2)},
			Via: "environment", Envelope: env}
	}
}
