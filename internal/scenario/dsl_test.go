package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"roboads/internal/attack"
)

func TestDefaultSuiteCoverage(t *testing.T) {
	s, err := Default(42)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]int{}
	names := map[string]bool{}
	for _, sc := range s.Scenarios {
		classes[sc.Class]++
		names[sc.Name] = true
	}
	// All Table II rows plus tire blowout, the Tamiya §V-D suite, the
	// clean baseline, and the new adversary classes.
	if classes["table2"] != 12 {
		t.Errorf("table2 scenarios = %d, want 12", classes["table2"])
	}
	if classes["tamiya"] != 5 {
		t.Errorf("tamiya scenarios = %d, want 5", classes["tamiya"])
	}
	if classes["clean"] != 1 {
		t.Errorf("clean scenarios = %d, want 1", classes["clean"])
	}
	newAdversaries := classes["stealthy"] + classes["coordinated"] +
		classes["intermittent"] + classes["ramp"] + classes["environment"]
	if newAdversaries < 6 {
		t.Errorf("new adversary scenarios = %d, want ≥ 6", newAdversaries)
	}
	for _, want := range []string{
		"stealthy-ips-subthreshold", "stealthy-actuator-subthreshold",
		"coordinated-campaign", "intermittent-ips", "ramp-ips",
		"occlusion-lidar", "wheel-slip-left", "wheel-slip-warehouse",
	} {
		if !names[want] {
			t.Errorf("default suite missing %q", want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s, err := Default(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := Fuzz(s, 5); err != nil {
		t.Fatal(err)
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatal("decode(encode(suite)) != suite")
	}
	h1, _ := s.Hash()
	h2, _ := back.Hash()
	if h1 != h2 || h1 == "" {
		t.Fatalf("hash mismatch: %q vs %q", h1, h2)
	}
}

func TestFuzzGeneratorDeterministic(t *testing.T) {
	a, err := Default(11)
	if err != nil {
		t.Fatal(err)
	}
	if err := Fuzz(a, 20); err != nil {
		t.Fatal(err)
	}
	b, _ := Default(11)
	if err := Fuzz(b, 20); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fuzz sweep is not deterministic in the seed")
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := map[string]string{
		"bad version":      `{"version":9,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"khepera"}]}`,
		"empty suite":      `{"version":1,"name":"x","seed":1,"scenarios":[]}`,
		"unknown field":    `{"version":1,"name":"x","seed":1,"bogus":3,"scenarios":[{"name":"a","robot":"khepera"}]}`,
		"unknown robot":    `{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"roomba"}]}`,
		"unknown world":    `{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"khepera","world":"moon"}]}`,
		"duplicate name":   `{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"khepera"},{"name":"a","robot":"khepera"}]}`,
		"unknown kind":     `{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"khepera","attacks":[{"kind":"teleport","envelope":{"start":1}}]}]}`,
		"wrong sensor":     `{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"tamiya","attacks":[{"kind":"bias","sensor":"wheel-encoder","offset":[1],"envelope":{"start":1}}]}]}`,
		"end before start": `{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"khepera","attacks":[{"kind":"bias","sensor":"ips","offset":[1],"envelope":{"start":10,"end":5}}]}]}`,
		"duty no period":   `{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"khepera","attacks":[{"kind":"bias","sensor":"ips","offset":[1],"envelope":{"start":1,"duty":0.5}}]}]}`,
		"period duty 0":    `{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"khepera","attacks":[{"kind":"bias","sensor":"ips","offset":[1],"envelope":{"start":1,"period":10}}]}]}`,
		"ramp on zero":     `{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"khepera","attacks":[{"kind":"zero","sensor":"lidar","envelope":{"start":1,"ramp":20}}]}]}`,
		"ramp occlusion":   `{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"khepera","attacks":[{"kind":"occlusion","sensor":"lidar","distance":0.1,"beams":[0],"envelope":{"start":1,"ramp":20}}]}]}`,
		"slip over 1":      `{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"khepera","attacks":[{"kind":"wheel-slip","slip":1.5,"wheels":[0],"envelope":{"start":1}}]}]}`,
		"bad channel":      `{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"khepera","attacks":[{"kind":"zero","sensor":"lidar","via":"psychic","envelope":{"start":1}}]}]}`,
	}
	for name, doc := range cases {
		if _, err := Decode([]byte(doc)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestCompileMatchesTable2Primitives pins that lifting a hardcoded
// scenario into the DSL and compiling it back reproduces the exact
// primitive values — the guarantee that DSL-driven Table II runs are the
// canonical ones.
func TestCompileMatchesTable2Primitives(t *testing.T) {
	for _, orig := range append(attack.KheperaScenarios(), attack.TireBlowoutScenario()) {
		dsl, err := FromScenario(orig, "khepera", "table2")
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		compiled, err := dsl.Compile(orig.ID)
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		if len(compiled.SensorAttacks) != len(orig.SensorAttacks) ||
			len(compiled.ActuatorAttacks) != len(orig.ActuatorAttacks) {
			t.Fatalf("%s: attack count mismatch", orig.Name)
		}
		for i, a := range compiled.SensorAttacks {
			if !reflect.DeepEqual(a, orig.SensorAttacks[i]) {
				t.Errorf("%s sensor attack %d: %#v != %#v", orig.Name, i, a, orig.SensorAttacks[i])
			}
		}
		for i, a := range compiled.ActuatorAttacks {
			if !reflect.DeepEqual(a, orig.ActuatorAttacks[i]) {
				t.Errorf("%s actuator attack %d: %#v != %#v", orig.Name, i, a, orig.ActuatorAttacks[i])
			}
		}
	}
}

func FuzzScenarioDecode(f *testing.F) {
	s, err := Default(3)
	if err != nil {
		f.Fatal(err)
	}
	data, err := s.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{"version":1,"name":"x","seed":1,"scenarios":[{"name":"a","robot":"khepera"}]}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, doc []byte) {
		suite, err := Decode(doc)
		if err != nil {
			return
		}
		// A document that decodes must re-encode, round-trip, and
		// compile without panicking.
		out, err := suite.Encode()
		if err != nil {
			t.Fatalf("encode after decode: %v", err)
		}
		back, err := Decode(out)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if _, err := back.Hash(); err != nil {
			t.Fatalf("hash: %v", err)
		}
		for i := range back.Scenarios {
			if _, err := back.Scenarios[i].Compile(i); err != nil {
				t.Fatalf("compile %d: %v", i, err)
			}
		}
	})
}

// TestSuiteJSONStable pins the wire shape of one scenario so DSL edits
// stay deliberate.
func TestSuiteJSONStable(t *testing.T) {
	s := Suite{Version: 1, Name: "pin", Seed: 5, Scenarios: []Scenario{{
		Name: "a", Class: "stealthy", Robot: "khepera",
		Attacks: []Attack{{
			Kind: "bias", Sensor: "ips", Offset: []float64{0.01, 0, 0},
			Via: "physical", Envelope: Envelope{Start: 60, Ramp: 50},
		}},
	}}}
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"version":1,"name":"pin","seed":5,"scenarios":[{"name":"a","class":"stealthy","robot":"khepera","attacks":[{"kind":"bias","sensor":"ips","offset":[0.01,0,0],"via":"physical","envelope":{"start":60,"ramp":50}}]}]}`
	if string(data) != want {
		t.Fatalf("wire shape changed:\n got %s\nwant %s", data, want)
	}
	if !strings.Contains(string(data), `"envelope"`) {
		t.Fatal("envelope missing")
	}
}
