// Package store is the durability layer of the fleet session service: a
// versioned snapshot codec plus a per-session append-only write-ahead
// log of accepted frames. Together they make a hosted detector's state
// survive a crash or redeploy bit-for-bit — recovery loads the newest
// valid snapshot and replays the WAL tail through a freshly built
// detector, after which the next frame produces exactly the report the
// uninterrupted process would have produced.
//
// On-disk layout (one directory per session):
//
//	<dir>/<session>/snapshot-<k>        snapshot after k applied frames
//	<dir>/<session>/wal-<k>.ndjson      frames k+1, k+2, … (CRC-checked)
//
// Snapshots are written to a temporary file and atomically renamed, so
// a crash mid-write never corrupts the previous snapshot; writing
// snapshot-<k> rotates the WAL to wal-<k>.ndjson and removes older
// pairs (compaction). A torn WAL tail — the normal artifact of a crash
// mid-append — is detected by per-record CRCs and sequence numbers and
// silently truncated at the last valid record.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"roboads/internal/detect"
)

// SnapshotVersion is the current snapshot codec version. Decoders
// refuse other versions with ErrSnapshotVersion rather than guessing:
// the payload schema may have changed incompatibly. The versioning
// policy is append-only — new optional JSON fields do not bump the
// version; removed or re-interpreted fields do.
const SnapshotVersion = 1

// snapshotMagic brands a snapshot file so arbitrary files (and traces)
// are rejected immediately.
var snapshotMagic = [6]byte{'R', 'B', 'S', 'N', 'A', 'P'}

// envelope layout: magic[6] | version uint16 | payloadLen uint32 |
// payload | crc32(payload) uint32, all little-endian.
const envelopeHeaderLen = 6 + 2 + 4
const envelopeTrailerLen = 4

// maxSnapshotPayload bounds a decoded payload allocation so a corrupt
// or hostile length field cannot OOM the process. Real snapshots are a
// few kilobytes.
const maxSnapshotPayload = 64 << 20

// Snapshot codec errors.
var (
	// ErrSnapshotCorrupt indicates a snapshot whose envelope is
	// malformed, truncated, or fails its checksum.
	ErrSnapshotCorrupt = errors.New("store: corrupt snapshot")
	// ErrSnapshotVersion indicates a snapshot recorded under a
	// different codec version.
	ErrSnapshotVersion = errors.New("store: unsupported snapshot version")
)

// Snapshot is one serialized detector checkpoint: the session identity
// needed to rebuild the detector plus the complete pipeline state.
type Snapshot struct {
	// SessionID is the fleet session identifier.
	SessionID string `json:"sessionId"`
	// Robot names the platform profile the session hosts.
	Robot string `json:"robot"`
	// Workers is the session's mode-bank worker override (Spec.Workers).
	Workers int `json:"workers,omitempty"`
	// Sensors and Dt mirror the session's wire contract; recovery
	// validates them against the freshly built detector's profile.
	Sensors []string `json:"sensors"`
	Dt      float64  `json:"dtSeconds"`
	// FramesApplied counts the frames folded into State — the WAL
	// segment paired with this snapshot continues at FramesApplied+1.
	FramesApplied int `json:"framesApplied"`
	// State is the detector's exported pipeline state.
	State *detect.State `json:"state"`
}

// EncodeSnapshot serializes a snapshot into the versioned CRC-checked
// envelope. The payload is JSON: encoding/json renders float64 with
// shortest-exact precision, so every filter quantity round-trips
// bit-for-bit.
func EncodeSnapshot(snap *Snapshot) ([]byte, error) {
	if snap == nil || snap.State == nil {
		return nil, errors.New("store: nil snapshot")
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("store: encode snapshot: %w", err)
	}
	out := make([]byte, envelopeHeaderLen+len(payload)+envelopeTrailerLen)
	copy(out, snapshotMagic[:])
	binary.LittleEndian.PutUint16(out[6:], SnapshotVersion)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(payload)))
	copy(out[envelopeHeaderLen:], payload)
	crc := crc32.ChecksumIEEE(payload)
	binary.LittleEndian.PutUint32(out[envelopeHeaderLen+len(payload):], crc)
	return out, nil
}

// DecodeSnapshot parses and validates a snapshot envelope. Truncated,
// bit-flipped, or foreign inputs return ErrSnapshotCorrupt (or
// ErrSnapshotVersion for a valid envelope of another version); no input
// panics.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < envelopeHeaderLen+envelopeTrailerLen {
		return nil, fmt.Errorf("%w: %d bytes (want at least %d)", ErrSnapshotCorrupt, len(data), envelopeHeaderLen+envelopeTrailerLen)
	}
	if [6]byte(data[:6]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	version := binary.LittleEndian.Uint16(data[6:])
	if version != SnapshotVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrSnapshotVersion, version, SnapshotVersion)
	}
	payloadLen := binary.LittleEndian.Uint32(data[8:])
	if payloadLen > maxSnapshotPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrSnapshotCorrupt, payloadLen)
	}
	if len(data) != envelopeHeaderLen+int(payloadLen)+envelopeTrailerLen {
		return nil, fmt.Errorf("%w: %d bytes (header says %d payload)", ErrSnapshotCorrupt, len(data), payloadLen)
	}
	payload := data[envelopeHeaderLen : envelopeHeaderLen+int(payloadLen)]
	want := binary.LittleEndian.Uint32(data[envelopeHeaderLen+int(payloadLen):])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: checksum %08x (want %08x)", ErrSnapshotCorrupt, got, want)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrSnapshotCorrupt, err)
	}
	if snap.State == nil || snap.State.Engine == nil || snap.State.Decider == nil {
		return nil, fmt.Errorf("%w: incomplete state", ErrSnapshotCorrupt)
	}
	if snap.FramesApplied < 0 {
		return nil, fmt.Errorf("%w: negative frame count", ErrSnapshotCorrupt)
	}
	return &snap, nil
}
