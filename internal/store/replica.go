package store

import (
	"fmt"
	"os"
	"path/filepath"

	"roboads/internal/trace"
)

// Replication and migration support: reading a session's durable state
// for shipping (ReplicaRead) and writing shipped state back to disk as
// if it had always lived here (Materialize). Both speak the existing
// snapshot/WAL file formats, so a materialized session recovers through
// the ordinary Recover path bit-for-bit.

// ReplicaBatch is what a cursor-positioned reader needs to catch up on
// one session.
type ReplicaBatch struct {
	// Snapshot is the raw snapshot envelope to install first; nil when
	// the reader's cursor already extends the current segment and the
	// frames alone suffice.
	Snapshot []byte
	// Base is the snapshot's FramesApplied (meaningful when Snapshot is
	// non-nil).
	Base int
	// Frames are the WAL frames to apply after the snapshot (or after
	// the cursor), in order.
	Frames []*trace.Frame
	// FirstSeq is the absolute sequence number of Frames[0]; frame i
	// has sequence FirstSeq+i.
	FirstSeq int
}

// ReplicaRead reads what a reader whose durable state ends at cursor
// (its FramesApplied; negative for "nothing") needs to catch up on the
// session: nothing but newer WAL frames when the cursor lies inside the
// current snapshot generation, or the full snapshot plus its WAL when
// the cursor is behind the snapshot, ahead of the durable tail
// (diverged), or empty.
//
// The read is lock-free against the writer: the snapshot is immutable
// once renamed into place, and the WAL file only grows within a
// generation, so a concurrent append can at worst leave a torn final
// record, which the sequential decoder already treats as end-of-stream.
// A rotation between the snapshot read and the WAL read yields a
// shorter (or missing) WAL view for the old generation — also safe, the
// next round catches up on the new one.
func (st *Store) ReplicaRead(id string, cursor int) (*ReplicaBatch, error) {
	dir, err := st.sessionDir(id)
	if err != nil {
		return nil, err
	}
	raw, snap, k, err := st.loadNewestSnapshotRaw(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, walName(k)))
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: replica read %s: %w", id, err)
	}
	frames, _, _ := decodeWALStream(data, snap.FramesApplied+1)
	if cursor >= k && cursor <= k+len(frames) {
		return &ReplicaBatch{Frames: frames[cursor-k:], FirstSeq: cursor + 1}, nil
	}
	return &ReplicaBatch{Snapshot: raw, Base: k, Frames: frames, FirstSeq: k + 1}, nil
}

// loadNewestSnapshotRaw is loadNewestSnapshot returning the raw envelope
// bytes too, for shipping without a re-encode (the CRC travels with it).
func (st *Store) loadNewestSnapshotRaw(dir string) ([]byte, *Snapshot, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("store: read session dir: %w", err)
	}
	var lastErr error = ErrNoSnapshot
	best := -1
	for _, e := range entries {
		if k, ok := snapshotIndex(e.Name()); ok && k > best {
			best = k
		}
	}
	for k := best; k >= 0; k-- {
		data, err := os.ReadFile(filepath.Join(dir, snapshotName(k)))
		if err != nil {
			if !os.IsNotExist(err) {
				lastErr = err
			}
			continue
		}
		snap, err := DecodeSnapshot(data)
		if err != nil {
			lastErr = err
			continue
		}
		if snap.FramesApplied != k {
			lastErr = fmt.Errorf("%w: snapshot-%d declares %d frames", ErrSnapshotCorrupt, k, snap.FramesApplied)
			continue
		}
		return data, snap, k, nil
	}
	return nil, nil, 0, fmt.Errorf("store: %s: %w", dir, lastErr)
}

// Materialize installs a shipped session state on disk: the snapshot
// envelope is validated and written as snapshot-<k>, the frame tail as
// binary WAL records continuing at k+1, everything fsynced — replacing
// whatever the directory previously held. Afterwards the ordinary
// Recover path rebuilds the session bit-for-bit identical to the
// source. The session must not be live locally.
func (st *Store) Materialize(id string, snapshot []byte, frames []*trace.Frame) error {
	snap, err := DecodeSnapshot(snapshot)
	if err != nil {
		return fmt.Errorf("store: materialize %s: %w", id, err)
	}
	if snap.SessionID != id {
		return fmt.Errorf("store: materialize %s: snapshot names session %q", id, snap.SessionID)
	}
	dir, err := st.sessionDir(id)
	if err != nil {
		return err
	}
	// Replace, never merge: stale local state (an old copy of a session
	// bouncing back, a diverged follower) must not survive alongside the
	// authoritative shipped state.
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("store: materialize %s: %w", id, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: materialize %s: %w", id, err)
	}
	k := snap.FramesApplied
	tmp, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("store: materialize %s: %w", id, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(snapshot); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: materialize %s: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: materialize %s: %w", id, err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapshotName(k))); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: materialize %s: %w", id, err)
	}
	// The WAL tail, one binary record per frame, then a single fsync:
	// Materialize is off the hot path, durability before return is the
	// whole point.
	w, err := openWALTrunc(filepath.Join(dir, walName(k)), k, -1)
	if err != nil {
		return err
	}
	for _, fr := range frames {
		if _, _, err := w.append(fr); err != nil {
			w.close()
			return fmt.Errorf("store: materialize %s: %w", id, err)
		}
	}
	if err := w.sync(); err != nil {
		w.close()
		return fmt.Errorf("store: materialize %s: %w", id, err)
	}
	if err := w.close(); err != nil {
		return fmt.Errorf("store: materialize %s: %w", id, err)
	}
	syncDir(dir)
	syncDir(st.dir)
	return nil
}
