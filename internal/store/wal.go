package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"roboads/internal/trace"
)

// walRecord is one NDJSON line of a WAL segment. Frame is kept as raw
// JSON so the checksum covers the exact bytes on disk: json.Unmarshal
// into a RawMessage preserves the original byte sequence, making the
// CRC check independent of field ordering or float re-rendering.
type walRecord struct {
	// Seq is the absolute applied-frame index (1-based). Records in a
	// segment must be contiguous starting at the paired snapshot's
	// FramesApplied+1; a gap or regression marks the tail invalid.
	Seq int `json:"seq"`
	// Crc is the CRC-32 (IEEE) of the Frame bytes.
	Crc uint32 `json:"crc"`
	// Frame is the accepted monitor input, in the trace wire format.
	Frame json.RawMessage `json:"frame"`
}

// ErrWALCorrupt reports a WAL record that is structurally invalid in a
// way strict readers care about. Recovery itself never returns it for a
// torn tail — that is the expected crash artifact — but DecodeWALRecord
// surfaces it so fuzzing and diagnostics can distinguish bad records.
var ErrWALCorrupt = errors.New("store: corrupt WAL record")

// EncodeWALRecord renders one frame as a CRC-checked NDJSON line
// (including the trailing newline).
func EncodeWALRecord(seq int, frame *trace.Frame) ([]byte, error) {
	if frame == nil {
		return nil, errors.New("store: nil frame")
	}
	if seq <= 0 {
		return nil, fmt.Errorf("store: WAL sequence %d must be positive", seq)
	}
	body, err := json.Marshal(frame)
	if err != nil {
		return nil, fmt.Errorf("store: encode WAL frame: %w", err)
	}
	rec := walRecord{Seq: seq, Crc: crc32.ChecksumIEEE(body), Frame: body}
	line, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode WAL record: %w", err)
	}
	return append(line, '\n'), nil
}

// DecodeWALRecord parses one NDJSON line back into its sequence number
// and frame, verifying the checksum. Truncated or bit-flipped input
// returns an error wrapping ErrWALCorrupt; no input panics.
func DecodeWALRecord(line []byte) (int, *trace.Frame, error) {
	var rec walRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrWALCorrupt, err)
	}
	if rec.Seq <= 0 {
		return 0, nil, fmt.Errorf("%w: sequence %d", ErrWALCorrupt, rec.Seq)
	}
	if len(rec.Frame) == 0 {
		return 0, nil, fmt.Errorf("%w: empty frame", ErrWALCorrupt)
	}
	if got := crc32.ChecksumIEEE(rec.Frame); got != rec.Crc {
		return 0, nil, fmt.Errorf("%w: checksum %08x (want %08x)", ErrWALCorrupt, got, rec.Crc)
	}
	var frame trace.Frame
	if err := json.Unmarshal(rec.Frame, &frame); err != nil {
		return 0, nil, fmt.Errorf("%w: frame payload: %v", ErrWALCorrupt, err)
	}
	return rec.Seq, &frame, nil
}

// readWALTail reads the valid prefix of a WAL stream whose first record
// must carry sequence number firstSeq. It stops — without error — at
// the first torn, corrupt, or out-of-sequence record: everything after
// a bad record postdates the crash that produced it and is discarded.
// truncated reports whether anything was discarded. Only I/O errors
// (not decode failures) are returned.
func readWALTail(r io.Reader, firstSeq int) (frames []*trace.Frame, truncated bool, err error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<22)
	next := firstSeq
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		seq, frame, derr := DecodeWALRecord(line)
		if derr != nil || seq != next {
			return frames, true, nil
		}
		frames = append(frames, frame)
		next++
	}
	if serr := scanner.Err(); serr != nil {
		if errors.Is(serr, bufio.ErrTooLong) {
			// A line the scanner cannot hold is as unusable as a torn
			// one; treat it as the corrupt tail rather than an I/O fault.
			return frames, true, nil
		}
		return frames, true, serr
	}
	return frames, false, nil
}

// walWriter appends CRC-checked frame records to one WAL segment file
// under the store's fsync policy. It is not safe for concurrent use;
// the session layer serializes appends behind the session step lock.
type walWriter struct {
	f          *os.File
	seq        int // last appended sequence number
	fsyncEvery int // 1: every append; n>1: every n appends; <0: never
	sinceSync  int
}

// openWAL opens (creating or appending to) the segment at path. lastSeq
// is the sequence number of the last record already known durable — the
// paired snapshot's FramesApplied plus any records replayed from the
// segment at recovery.
func openWAL(path string, lastSeq, fsyncEvery int) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open WAL: %w", err)
	}
	return &walWriter{f: f, seq: lastSeq, fsyncEvery: fsyncEvery}, nil
}

// append writes one frame as the next record, fsyncing per policy.
// It returns the record's sequence number and whether this append
// carried an fsync (the store's fsync counter tracks only real syncs).
func (w *walWriter) append(frame *trace.Frame) (seq int, synced bool, err error) {
	line, err := EncodeWALRecord(w.seq+1, frame)
	if err != nil {
		return 0, false, err
	}
	if _, err := w.f.Write(line); err != nil {
		return 0, false, fmt.Errorf("store: append WAL: %w", err)
	}
	w.seq++
	w.sinceSync++
	if w.fsyncEvery > 0 && w.sinceSync >= w.fsyncEvery {
		if err := w.f.Sync(); err != nil {
			return 0, false, fmt.Errorf("store: fsync WAL: %w", err)
		}
		w.sinceSync = 0
		return w.seq, true, nil
	}
	return w.seq, false, nil
}

// sync forces an fsync regardless of policy.
func (w *walWriter) sync() error {
	w.sinceSync = 0
	return w.f.Sync()
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
