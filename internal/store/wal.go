package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"roboads/internal/trace"
)

// walRecord is one NDJSON line of a WAL segment. Frame is kept as raw
// JSON so the checksum covers the exact bytes on disk: json.Unmarshal
// into a RawMessage preserves the original byte sequence, making the
// CRC check independent of field ordering or float re-rendering.
type walRecord struct {
	// Seq is the absolute applied-frame index (1-based). Records in a
	// segment must be contiguous starting at the paired snapshot's
	// FramesApplied+1; a gap or regression marks the tail invalid.
	Seq int `json:"seq"`
	// Crc is the CRC-32 (IEEE) of the Frame bytes.
	Crc uint32 `json:"crc"`
	// Frame is the accepted monitor input, in the trace wire format.
	Frame json.RawMessage `json:"frame"`
}

// ErrWALCorrupt reports a WAL record that is structurally invalid in a
// way strict readers care about. Recovery itself never returns it for a
// torn tail — that is the expected crash artifact — but DecodeWALRecord
// surfaces it so fuzzing and diagnostics can distinguish bad records.
var ErrWALCorrupt = errors.New("store: corrupt WAL record")

// Binary WAL record framing. New appends use this format — one encode
// pass into a reused buffer instead of the JSON path's marshal-then-
// marshal-again copy — while recovery accepts both formats in one
// segment, so a store upgraded mid-segment replays its old JSON prefix
// unchanged:
//
//	record  = marker 0xB2 | payloadLen uint32 LE | payload | crc32(payload) uint32 LE
//	payload = seq uint64 LE | frame (trace binary payload layout)
//
// The marker can never open a JSON record line ('{') or be a newline,
// so a reader can dispatch on the first byte of each record.
const (
	walBinaryMarker byte = 0xB2
	// walBinaryOverhead is the envelope size around a record payload.
	walBinaryOverhead = 1 + 4 + 4
	// maxWALPayload bounds a declared payload length against corrupt or
	// hostile length prefixes (mirrors the snapshot envelope bound).
	maxWALPayload = 64 << 20
	// oversizeWALRecord is the record size above which the oversize
	// counter increments — the former recovery scanner line cap, kept as
	// the threshold so the metric flags exactly the frames that older
	// versions would have silently dropped at recovery.
	oversizeWALRecord = 1 << 22
)

// EncodeWALRecord renders one frame as a CRC-checked NDJSON line
// (including the trailing newline).
func EncodeWALRecord(seq int, frame *trace.Frame) ([]byte, error) {
	if frame == nil {
		return nil, errors.New("store: nil frame")
	}
	if seq <= 0 {
		return nil, fmt.Errorf("store: WAL sequence %d must be positive", seq)
	}
	body, err := json.Marshal(frame)
	if err != nil {
		return nil, fmt.Errorf("store: encode WAL frame: %w", err)
	}
	rec := walRecord{Seq: seq, Crc: crc32.ChecksumIEEE(body), Frame: body}
	line, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode WAL record: %w", err)
	}
	return append(line, '\n'), nil
}

// DecodeWALRecord parses one NDJSON line back into its sequence number
// and frame, verifying the checksum. Truncated or bit-flipped input
// returns an error wrapping ErrWALCorrupt; no input panics.
func DecodeWALRecord(line []byte) (int, *trace.Frame, error) {
	var rec walRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrWALCorrupt, err)
	}
	if rec.Seq <= 0 {
		return 0, nil, fmt.Errorf("%w: sequence %d", ErrWALCorrupt, rec.Seq)
	}
	if len(rec.Frame) == 0 {
		return 0, nil, fmt.Errorf("%w: empty frame", ErrWALCorrupt)
	}
	if got := crc32.ChecksumIEEE(rec.Frame); got != rec.Crc {
		return 0, nil, fmt.Errorf("%w: checksum %08x (want %08x)", ErrWALCorrupt, got, rec.Crc)
	}
	var frame trace.Frame
	if err := json.Unmarshal(rec.Frame, &frame); err != nil {
		return 0, nil, fmt.Errorf("%w: frame payload: %v", ErrWALCorrupt, err)
	}
	return rec.Seq, &frame, nil
}

// AppendWALRecordBinary appends one frame as a binary WAL record to dst
// and returns the extended slice. This is the hot-path encoder: one
// pass, no intermediate marshal, amortized zero allocations when dst is
// reused across appends.
func AppendWALRecordBinary(dst []byte, seq int, frame *trace.Frame) ([]byte, error) {
	if frame == nil {
		return dst, errors.New("store: nil frame")
	}
	if seq <= 0 {
		return dst, fmt.Errorf("store: WAL sequence %d must be positive", seq)
	}
	dst = append(dst, walBinaryMarker, 0, 0, 0, 0)
	lenAt := len(dst) - 4
	payloadAt := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(seq))
	dst = trace.AppendFrameBinary(dst, frame)
	payload := dst[payloadAt:]
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload)), nil
}

// decodeWALRecordBinary parses the binary WAL record opening at data[0]
// (which the caller has checked is walBinaryMarker). n is the full
// encoded record length when the record is intact; a torn, truncated,
// or checksum-failed record returns an error wrapping ErrWALCorrupt.
func decodeWALRecordBinary(data []byte) (seq int, frame *trace.Frame, n int, err error) {
	if len(data) < 5 {
		return 0, nil, 0, fmt.Errorf("%w: torn binary prologue", ErrWALCorrupt)
	}
	plen := int(binary.LittleEndian.Uint32(data[1:5]))
	if plen < 8 || plen > maxWALPayload {
		return 0, nil, 0, fmt.Errorf("%w: payload length %d", ErrWALCorrupt, plen)
	}
	n = walBinaryOverhead + plen
	if len(data) < n {
		return 0, nil, 0, fmt.Errorf("%w: torn binary payload", ErrWALCorrupt)
	}
	payload := data[5 : 5+plen]
	want := binary.LittleEndian.Uint32(data[5+plen:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, 0, fmt.Errorf("%w: checksum %08x (want %08x)", ErrWALCorrupt, got, want)
	}
	seq = int(int64(binary.LittleEndian.Uint64(payload)))
	if seq <= 0 {
		return 0, nil, 0, fmt.Errorf("%w: sequence %d", ErrWALCorrupt, seq)
	}
	frame, ferr := trace.DecodeFrameBinary(payload[8:])
	if ferr != nil {
		return 0, nil, 0, fmt.Errorf("%w: frame payload: %v", ErrWALCorrupt, ferr)
	}
	return seq, frame, n, nil
}

// decodeWALStream parses the valid record prefix of a WAL segment
// holding JSON lines, binary records, or any mix (a segment written by
// an older version and continued by this one). It stops at the first
// torn, corrupt, or out-of-sequence record: everything after a bad
// record postdates the crash that produced it. validBytes is the byte
// length of the valid prefix (== len(data) when the segment is clean).
// oversize counts valid records larger than oversizeWALRecord — frames
// that pre-fix recovery code would have silently dropped as unscannable.
func decodeWALStream(data []byte, firstSeq int) (frames []*trace.Frame, validBytes int, oversize int) {
	next := firstSeq
	off := 0
	for off < len(data) {
		var seq, n int
		var frame *trace.Frame
		var derr error
		switch data[off] {
		case '\n':
			// Blank line between JSON records; tolerated like the old
			// line scanner did.
			off++
			continue
		case walBinaryMarker:
			seq, frame, n, derr = decodeWALRecordBinary(data[off:])
		default:
			nl := bytes.IndexByte(data[off:], '\n')
			if nl < 0 {
				// Final line has no newline: torn mid-append.
				return frames, off, oversize
			}
			n = nl + 1
			seq, frame, derr = DecodeWALRecord(data[off : off+nl])
		}
		if derr != nil || seq != next {
			return frames, off, oversize
		}
		if n > oversizeWALRecord {
			oversize++
		}
		frames = append(frames, frame)
		next++
		off += n
	}
	return frames, off, oversize
}

// readWALTail reads the valid prefix of a WAL stream whose first record
// must carry sequence number firstSeq. It stops — without error — at
// the first torn, corrupt, or out-of-sequence record: everything after
// a bad record postdates the crash that produced it and is discarded.
// truncated reports whether anything was discarded; oversize counts
// recovered records larger than oversizeWALRecord (there is no upper
// bound on record size — a legitimately huge acked frame recovers
// intact rather than masquerading as a torn tail). Only I/O errors (not
// decode failures) are returned.
func readWALTail(r io.Reader, firstSeq int) (frames []*trace.Frame, truncated bool, oversize int, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, true, 0, err
	}
	frames, validBytes, oversize := decodeWALStream(data, firstSeq)
	return frames, validBytes < len(data), oversize, nil
}

// walWriter appends CRC-checked frame records to one WAL segment file
// under the store's fsync policy. It is not safe for concurrent use;
// the session layer serializes appends behind the session step lock.
type walWriter struct {
	f          *os.File
	seq        int // last appended sequence number
	fsyncEvery int // 1: every append; n>1: every n appends; <0: never
	sinceSync  int
	syncNanos  int64  // wall time of the most recent append's inline fsync; 0 when it carried none
	buf        []byte // reused binary record encoding buffer
}

// openWAL opens (creating or appending to) the segment at path. lastSeq
// is the sequence number of the last record already known durable — the
// paired snapshot's FramesApplied plus any records replayed from the
// segment at recovery.
func openWAL(path string, lastSeq, fsyncEvery int) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open WAL: %w", err)
	}
	return &walWriter{f: f, seq: lastSeq, fsyncEvery: fsyncEvery}, nil
}

// append writes one frame as the next record, fsyncing per policy.
// It returns the record's sequence number and whether this append
// carried an fsync (the store's fsync counter tracks only real syncs).
// Records are written in the binary format, encoded once into the
// writer's reused buffer — the hot durable path carries no JSON marshal
// and amortizes to zero allocations per append.
func (w *walWriter) append(frame *trace.Frame) (seq int, synced bool, err error) {
	w.syncNanos = 0
	w.buf, err = AppendWALRecordBinary(w.buf[:0], w.seq+1, frame)
	if err != nil {
		return 0, false, err
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, false, fmt.Errorf("store: append WAL: %w", err)
	}
	w.seq++
	w.sinceSync++
	if w.fsyncEvery > 0 && w.sinceSync >= w.fsyncEvery {
		// Timed so frame tracing can reattribute the inline fsync's
		// share of the append out of the wal_append stage.
		t0 := time.Now()
		if err := w.f.Sync(); err != nil {
			return 0, false, fmt.Errorf("store: fsync WAL: %w", err)
		}
		w.syncNanos = time.Since(t0).Nanoseconds()
		w.sinceSync = 0
		return w.seq, true, nil
	}
	return w.seq, false, nil
}

// sync forces an fsync regardless of policy.
func (w *walWriter) sync() error {
	w.sinceSync = 0
	return w.f.Sync()
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
