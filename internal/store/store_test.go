package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/telemetry"
	"roboads/internal/trace"
)

// testState builds a small but fully populated detector state literal —
// the codec does not interpret it, only round-trips it.
func testState() *detect.State {
	return &detect.State{
		Engine: &core.EngineState{
			K:        41,
			Selected: 1,
			Weights:  []float64{0.25, 0.75},
			X:        []float64{1.5, -2.25, 0.0078125},
			Px:       []float64{1, 0, 0, 0, 1, 0, 0, 0, 1},
			Modes: []core.ModeBelief{
				{Name: "nominal", X: []float64{1, 2, 3}, Px: []float64{1, 0, 0, 0, 1, 0, 0, 0, 1}},
				{Name: "gps", X: []float64{4, 5, 6}, Px: []float64{2, 0, 0, 0, 2, 0, 0, 0, 2}},
			},
			ConfigHash: 0xdeadbeef,
		},
		Decider: &detect.DeciderState{
			Sensor:     detect.WindowState{Size: 10, Criteria: 5, Outcomes: []bool{true, false, true}},
			Actuator:   detect.WindowState{Size: 14, Criteria: 10, Outcomes: []bool{true, true}},
			PerSensor:  map[string]detect.WindowState{"gps": {Size: 10, Criteria: 5, Outcomes: []bool{false, true}}},
			ConfigHash: 0xfeedface,
		},
	}
}

func testSnapshot(frames int) *Snapshot {
	return &Snapshot{
		SessionID:     "sess-1",
		Robot:         "khepera",
		Workers:       2,
		Sensors:       []string{"gps", "imu"},
		Dt:            0.02,
		FramesApplied: frames,
		State:         testState(),
	}
}

func testFrame(k int) *trace.Frame {
	return &trace.Frame{
		K:        k,
		TNanos:   int64(k) * 20_000_000,
		U:        []float64{0.1 * float64(k), -0.2},
		Readings: map[string][]float64{"gps": {1.25, 2.5}, "imu": {0.75}},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := testSnapshot(41)
	data, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.SessionID != snap.SessionID || got.Robot != snap.Robot || got.Workers != snap.Workers ||
		got.Dt != snap.Dt || got.FramesApplied != snap.FramesApplied {
		t.Fatalf("identity fields changed: %+v", got)
	}
	if got.State.Engine.K != 41 || len(got.State.Engine.Modes) != 2 {
		t.Fatalf("engine state changed: %+v", got.State.Engine)
	}
	if got.State.Engine.Modes[1].Px[0] != 2 {
		t.Fatalf("mode covariance changed")
	}
	if got.State.Decider.Sensor.Outcomes[0] != true || got.State.Decider.PerSensor["gps"].Size != 10 {
		t.Fatalf("decider state changed: %+v", got.State.Decider)
	}
	// Re-encoding a decoded snapshot must be byte-identical: the codec
	// is deterministic, so snapshots can be compared as raw bytes.
	again, err := EncodeSnapshot(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encoded snapshot differs")
	}
}

func TestDecodeSnapshotTruncated(t *testing.T) {
	data, err := EncodeSnapshot(testSnapshot(7))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := DecodeSnapshot(data[:cut]); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("truncation at %d: got %v, want ErrSnapshotCorrupt", cut, err)
		}
	}
}

func TestDecodeSnapshotBitFlips(t *testing.T) {
	data, err := EncodeSnapshot(testSnapshot(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i += 3 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestDecodeSnapshotVersionSkew(t *testing.T) {
	data, err := EncodeSnapshot(testSnapshot(7))
	if err != nil {
		t.Fatal(err)
	}
	data[6], data[7] = 2, 0 // version 2 little-endian
	if _, err := DecodeSnapshot(data); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("version skew: got %v, want ErrSnapshotVersion", err)
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	line, err := EncodeWALRecord(3, testFrame(2))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if line[len(line)-1] != '\n' {
		t.Fatalf("record is not newline-terminated")
	}
	seq, frame, err := DecodeWALRecord(line[:len(line)-1])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if seq != 3 || frame.K != 2 || frame.U[0] != 0.2 || frame.Readings["gps"][1] != 2.5 {
		t.Fatalf("round trip changed record: seq=%d frame=%+v", seq, frame)
	}
	// Any bit flip must fail the CRC or the JSON parse.
	for i := 0; i < len(line)-1; i++ {
		mut := append([]byte(nil), line[:len(line)-1]...)
		mut[i] ^= 0x08
		if _, _, err := DecodeWALRecord(mut); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestReadWALTailStopsAtCorruption(t *testing.T) {
	var buf bytes.Buffer
	for seq := 1; seq <= 5; seq++ {
		line, err := EncodeWALRecord(seq, testFrame(seq-1))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	good := buf.Bytes()

	frames, truncated, _, err := readWALTail(bytes.NewReader(good), 1)
	if err != nil || truncated || len(frames) != 5 {
		t.Fatalf("clean tail: frames=%d truncated=%v err=%v", len(frames), truncated, err)
	}

	// Torn final record.
	torn := good[:len(good)-9]
	frames, truncated, _, err = readWALTail(bytes.NewReader(torn), 1)
	if err != nil || !truncated || len(frames) != 4 {
		t.Fatalf("torn tail: frames=%d truncated=%v err=%v", len(frames), truncated, err)
	}

	// Out-of-sequence start discards everything.
	frames, truncated, _, _ = readWALTail(bytes.NewReader(good), 2)
	if len(frames) != 0 || !truncated {
		t.Fatalf("sequence gap: frames=%d truncated=%v", len(frames), truncated)
	}
}

func TestSessionStoreLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	st, err := Open(t.TempDir(), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := st.Create("sess-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Append(testFrame(0)); err == nil {
		t.Fatalf("append before first snapshot should fail")
	}
	if _, err := ss.WriteSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if err := ss.Append(testFrame(k)); err != nil {
			t.Fatalf("append %d: %v", k, err)
		}
	}
	if ss.Applied() != 5 {
		t.Fatalf("applied=%d, want 5", ss.Applied())
	}
	// Second checkpoint at k=5 rotates the WAL and compacts.
	if _, err := ss.WriteSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	for k := 5; k < 8; k++ {
		if err := ss.Append(testFrame(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(filepath.Join(st.Dir(), "sess-1"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("compaction left %v, want exactly one snapshot/WAL pair", names)
	}

	// Recovery sees snapshot-5 plus three replayable frames.
	rs, snap, frames, err := st.Recover("sess-1")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if snap.FramesApplied != 5 || len(frames) != 3 || rs.Applied() != 8 {
		t.Fatalf("recover: base=%d frames=%d applied=%d", snap.FramesApplied, len(frames), rs.Applied())
	}
	if frames[0].K != 5 || frames[2].K != 7 {
		t.Fatalf("recovered frames out of order: %v..%v", frames[0].K, frames[2].K)
	}
	// The recovered store continues the segment.
	if err := rs.Append(testFrame(8)); err != nil {
		t.Fatal(err)
	}

	if reg.HistogramCount(MetricSnapshotBytes) != 2 {
		t.Fatalf("snapshot histogram count %d, want 2", reg.HistogramCount(MetricSnapshotBytes))
	}
	if reg.CounterValue(MetricWALAppends) != 9 {
		t.Fatalf("append counter %d, want 9", reg.CounterValue(MetricWALAppends))
	}
	if reg.CounterValue(MetricWALFsyncs) != 9 {
		t.Fatalf("fsync counter %d, want 9 (FsyncEvery defaults to 1)", reg.CounterValue(MetricWALFsyncs))
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := st.Create("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.WriteSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if err := ss.Append(testFrame(k)); err != nil {
			t.Fatal(err)
		}
	}
	ss.Close()

	// Simulate a crash mid-append: chop bytes off the final record.
	walPath := filepath.Join(st.Dir(), "s", walName(0))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-11], 0o644); err != nil {
		t.Fatal(err)
	}

	rs, snap, frames, err := st.Recover("s")
	if err != nil {
		t.Fatal(err)
	}
	if snap.FramesApplied != 0 || len(frames) != 3 || rs.Applied() != 3 {
		t.Fatalf("recover after tear: base=%d frames=%d applied=%d", snap.FramesApplied, len(frames), rs.Applied())
	}
	// The torn bytes were physically removed: the next append extends
	// the valid prefix, and a second recovery sees all four frames.
	if err := rs.Append(testFrame(3)); err != nil {
		t.Fatal(err)
	}
	rs.Close()
	rs2, _, frames2, err := st.Recover("s")
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	if len(frames2) != 4 || frames2[3].K != 3 {
		t.Fatalf("post-tear append not recoverable: %d frames", len(frames2))
	}
}

func TestRecoverFallsBackToOlderSnapshot(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := st.Create("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.WriteSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if err := ss.Append(testFrame(k)); err != nil {
			t.Fatal(err)
		}
	}
	ss.Close()

	// Plant a corrupt higher-numbered snapshot (as if compaction and the
	// rename raced a crash in some hostile way). Recovery must fall back
	// to snapshot-0 and its WAL.
	dir := filepath.Join(st.Dir(), "s")
	if err := os.WriteFile(filepath.Join(dir, snapshotName(9)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, snap, frames, err := st.Recover("s")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if snap.FramesApplied != 0 || len(frames) != 2 {
		t.Fatalf("fallback recovery: base=%d frames=%d", snap.FramesApplied, len(frames))
	}
}

func TestRecoverNoSnapshot(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create("unborn"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.Recover("unborn"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("got %v, want ErrNoSnapshot", err)
	}
}

func TestStoreSessionsAndRemove(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"b", "a"} {
		if _, err := st.Create(id); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := st.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("sessions %v", ids)
	}
	if err := st.Remove("a"); err != nil {
		t.Fatal(err)
	}
	ids, _ = st.Sessions()
	if len(ids) != 1 || ids[0] != "b" {
		t.Fatalf("after remove: %v", ids)
	}
	// Path traversal in session IDs is rejected.
	for _, bad := range []string{"", "..", "a/b", ".hidden"} {
		if _, err := st.Create(bad); err == nil {
			t.Fatalf("id %q accepted", bad)
		}
	}
}

func TestFsyncPolicies(t *testing.T) {
	reg := telemetry.NewRegistry()
	st, err := Open(t.TempDir(), Options{FsyncEvery: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := st.Create("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.WriteSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if err := ss.Append(testFrame(k)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.CounterValue(MetricWALFsyncs); got != 2 {
		t.Fatalf("fsync counter %d, want 2 (10 appends / every 4)", got)
	}
	if err := ss.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue(MetricWALFsyncs); got != 3 {
		t.Fatalf("explicit Sync not counted: %d", got)
	}
	ss.Close()

	reg2 := telemetry.NewRegistry()
	st2, err := Open(t.TempDir(), Options{FsyncEvery: -1, Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	ss2, err := st2.Create("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss2.WriteSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if err := ss2.Append(testFrame(k)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg2.CounterValue(MetricWALFsyncs); got != 0 {
		t.Fatalf("FsyncEvery<0 still synced %d times", got)
	}
	ss2.Close()
}

func TestSnapshotRejectsForeignFiles(t *testing.T) {
	for _, input := range [][]byte{
		nil,
		[]byte("{}"),
		[]byte(strings.Repeat("x", 64)),
		[]byte("RBSNAP"),
	} {
		if _, err := DecodeSnapshot(input); err == nil {
			t.Fatalf("input %q decoded", input)
		}
	}
}
