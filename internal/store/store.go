package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"roboads/internal/telemetry"
	"roboads/internal/trace"
)

// Metric names registered by a Store (nil-safe: a private registry is
// used when Options.Metrics is nil).
const (
	// MetricSnapshotBytes is the encoded-snapshot size histogram.
	MetricSnapshotBytes = "roboads_store_snapshot_bytes"
	// MetricSnapshotSeconds is the snapshot write latency histogram
	// (export + encode + durable write + compaction).
	MetricSnapshotSeconds = "roboads_store_snapshot_seconds"
	// MetricWALAppends counts WAL records appended.
	MetricWALAppends = "roboads_store_wal_appends_total"
	// MetricWALFsyncs counts WAL fsync calls.
	MetricWALFsyncs = "roboads_store_wal_fsync_total"
	// MetricRecoveredSessions gauges the sessions restored from disk by
	// the most recent startup recovery.
	MetricRecoveredSessions = "roboads_store_recovered_sessions"
	// MetricRecoveredFrames counts WAL frames replayed during recovery.
	MetricRecoveredFrames = "roboads_store_recovered_frames_total"
	// MetricWALOversize counts WAL records recovered intact despite
	// exceeding the legacy recovery scanner's 4MiB line cap — frames
	// older versions would have silently discarded as a torn tail.
	MetricWALOversize = "roboads_store_wal_oversize_total"
	// MetricCommitBatchFrames is the group-commit batch size histogram:
	// WAL appends amortized by each group fsync.
	MetricCommitBatchFrames = "roboads_store_commit_batch_frames"
	// MetricCommitSeconds is the group-commit latency histogram: time
	// from a batch opening to its fsync completing — the durability
	// delay a committed frame's reply waited out.
	MetricCommitSeconds = "roboads_store_commit_seconds"
)

// ErrNoSnapshot reports a session directory holding no decodable
// snapshot — either a session that crashed before its first checkpoint
// became durable, or a directory this store does not own.
var ErrNoSnapshot = errors.New("store: no valid snapshot")

// Options parameterizes a Store. The zero value of every field has a
// usable default.
type Options struct {
	// FsyncEvery is the WAL durability knob: 1 (and 0, the default)
	// fsyncs every appended frame — a frame acknowledged to the client
	// is on stable storage; n > 1 batches n appends per fsync, trading
	// the tail of a crash for throughput; negative never fsyncs and
	// leaves durability to the OS page cache (benchmarks, tests).
	FsyncEvery int
	// CommitWindow, when positive, enables cross-session group commit:
	// appends skip their inline fsync and SessionStore.Commit instead
	// enlists the session in a fleet-wide batch that is fsynced once —
	// one fsync per window covering every dirty session — after at most
	// this delay. Reply-after-fsync semantics are preserved as long as
	// callers reply only after Commit returns. A positive CommitWindow
	// supersedes FsyncEvery.
	CommitWindow time.Duration
	// Metrics receives the store histograms and counters; nil uses a
	// private registry.
	Metrics *telemetry.Registry
}

// Store is the on-disk root of the durability layer: one subdirectory
// per session, each holding a snapshot and its WAL segment. Store
// methods are safe for concurrent use across sessions; a single
// SessionStore is serialized by its owning session.
type Store struct {
	dir  string
	opts Options

	// committer is the group-commit coordinator; nil unless
	// Options.CommitWindow is positive.
	committer *committer

	mSnapBytes     *telemetry.Histogram
	mSnapSeconds   *telemetry.Histogram
	mAppends       *telemetry.Counter
	mFsyncs        *telemetry.Counter
	mRecovered     *telemetry.Gauge
	mReplayed      *telemetry.Counter
	mOversize      *telemetry.Counter
	mCommitFrames  *telemetry.Histogram
	mCommitSeconds *telemetry.Histogram
}

// Open prepares dir as a durability root, creating it if needed.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	if opts.FsyncEvery == 0 {
		opts.FsyncEvery = 1
	}
	if opts.CommitWindow > 0 {
		// Group commit owns durability: appends never fsync inline, the
		// committer's window flush covers every dirty session at once.
		opts.FsyncEvery = -1
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	st := &Store{
		dir:            dir,
		opts:           opts,
		mSnapBytes:     reg.Histogram(MetricSnapshotBytes, "Encoded snapshot size in bytes.", byteBuckets()),
		mSnapSeconds:   reg.Histogram(MetricSnapshotSeconds, "Snapshot write latency in seconds.", telemetry.LatencyBuckets()),
		mAppends:       reg.Counter(MetricWALAppends, "WAL records appended."),
		mFsyncs:        reg.Counter(MetricWALFsyncs, "WAL fsync calls."),
		mRecovered:     reg.Gauge(MetricRecoveredSessions, "Sessions restored by the last startup recovery."),
		mReplayed:      reg.Counter(MetricRecoveredFrames, "WAL frames replayed during recovery."),
		mOversize:      reg.Counter(MetricWALOversize, "WAL records recovered despite exceeding the legacy 4MiB line cap."),
		mCommitFrames:  reg.Histogram(MetricCommitBatchFrames, "WAL appends amortized per group-commit fsync.", batchBuckets()),
		mCommitSeconds: reg.Histogram(MetricCommitSeconds, "Group-commit latency in seconds.", telemetry.LatencyBuckets()),
	}
	if opts.CommitWindow > 0 {
		st.committer = newCommitter(st, opts.CommitWindow)
	}
	return st, nil
}

// Dir returns the store root.
func (st *Store) Dir() string { return st.dir }

// SetRecovered publishes the recovery gauge; the fleet manager calls it
// once startup recovery completes.
func (st *Store) SetRecovered(sessions int) { st.mRecovered.Set(float64(sessions)) }

// CountReplayed adds to the recovery frame-replay counter.
func (st *Store) CountReplayed(frames int) { st.mReplayed.Add(int64(frames)) }

// Sessions lists the session IDs with a directory under the root,
// sorted lexically. Presence does not imply recoverability — Recover
// reports ErrNoSnapshot for directories without a durable checkpoint.
func (st *Store) Sessions() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list sessions: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Remove deletes a session's persisted state entirely (explicit session
// deletion — eviction keeps state so the session can be restored).
func (st *Store) Remove(id string) error {
	dir, err := st.sessionDir(id)
	if err != nil {
		return err
	}
	return os.RemoveAll(dir)
}

// Create opens the durability state for a brand-new session. The
// session is not durable until its first WriteSnapshot succeeds:
// recovery treats a directory without a valid snapshot as a session
// whose creation never completed.
func (st *Store) Create(id string) (*SessionStore, error) {
	dir, err := st.sessionDir(id)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create session %s: %w", id, err)
	}
	return &SessionStore{st: st, id: id, dir: dir}, nil
}

// Recover loads a persisted session: the newest decodable snapshot plus
// the valid prefix of its WAL segment. A torn or corrupt WAL tail — the
// normal artifact of a crash mid-append — is physically truncated so
// subsequent appends extend the valid prefix. The returned SessionStore
// continues the recovered WAL segment.
func (st *Store) Recover(id string) (*SessionStore, *Snapshot, []*trace.Frame, error) {
	dir, err := st.sessionDir(id)
	if err != nil {
		return nil, nil, nil, err
	}
	snap, snapIdx, err := st.loadNewestSnapshot(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	walPath := filepath.Join(dir, walName(snapIdx))
	frames, validBytes, oversize, err := recoverWALFile(walPath, snap.FramesApplied+1)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: recover session %s: %w", id, err)
	}
	st.mOversize.Add(int64(oversize))
	if validBytes >= 0 {
		if err := os.Truncate(walPath, validBytes); err != nil {
			return nil, nil, nil, fmt.Errorf("store: truncate torn WAL tail: %w", err)
		}
	}
	applied := snap.FramesApplied + len(frames)
	w, err := openWAL(walPath, applied, st.opts.FsyncEvery)
	if err != nil {
		return nil, nil, nil, err
	}
	s := &SessionStore{st: st, id: id, dir: dir, wal: w, base: snap.FramesApplied, applied: applied}
	return s, snap, frames, nil
}

// loadNewestSnapshot decodes the highest-indexed valid snapshot in dir,
// falling back to older ones when the newest is corrupt (a crash can
// tear at most the file being written, which the atomic rename already
// excludes, but defense in depth costs one readdir).
func (st *Store) loadNewestSnapshot(dir string) (*Snapshot, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("store: read session dir: %w", err)
	}
	var indices []int
	for _, e := range entries {
		if k, ok := snapshotIndex(e.Name()); ok {
			indices = append(indices, k)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(indices)))
	var lastErr error = ErrNoSnapshot
	for _, k := range indices {
		data, err := os.ReadFile(filepath.Join(dir, snapshotName(k)))
		if err != nil {
			lastErr = err
			continue
		}
		snap, err := DecodeSnapshot(data)
		if err != nil {
			lastErr = err
			continue
		}
		if snap.FramesApplied != k {
			lastErr = fmt.Errorf("%w: snapshot-%d declares %d frames", ErrSnapshotCorrupt, k, snap.FramesApplied)
			continue
		}
		return snap, k, nil
	}
	return nil, 0, fmt.Errorf("store: %s: %w", dir, lastErr)
}

func (st *Store) sessionDir(id string) (string, error) {
	if id == "" || id != filepath.Base(id) || strings.HasPrefix(id, ".") {
		return "", fmt.Errorf("store: invalid session id %q", id)
	}
	return filepath.Join(st.dir, id), nil
}

// recoverWALFile reads the valid record prefix of the segment at path,
// accepting JSON, binary, and mixed segments. validBytes is the byte
// length of that prefix when a torn tail must be truncated away, or -1
// when the file is already clean (including when it does not exist
// yet). oversize counts recovered records over the legacy scanner cap.
func recoverWALFile(path string, firstSeq int) (frames []*trace.Frame, validBytes int64, oversize int, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, -1, 0, nil
	}
	if err != nil {
		return nil, -1, 0, err
	}
	frames, valid, oversize := decodeWALStream(data, firstSeq)
	if valid == len(data) {
		return frames, -1, oversize, nil
	}
	return frames, int64(valid), oversize, nil
}

// SessionStore is one session's durability state: the current WAL
// segment plus snapshot rotation. Methods are not safe for concurrent
// use — the fleet session serializes them behind its step lock.
type SessionStore struct {
	st      *Store
	id      string
	dir     string
	wal     *walWriter
	base    int // FramesApplied of the current snapshot
	applied int // absolute index of the last appended frame
}

// Applied returns the absolute index of the last durable-or-appended
// frame (snapshot base plus WAL records).
func (s *SessionStore) Applied() int { return s.applied }

// SinceSnapshot returns the number of frames appended since the current
// snapshot — the WAL length recovery would have to replay. Callers use
// it to pace automatic checkpoints.
func (s *SessionStore) SinceSnapshot() int { return s.applied - s.base }

// Append logs one accepted frame, fsyncing per the store policy. It
// must follow a successful WriteSnapshot (the segment is created by
// snapshot rotation).
func (s *SessionStore) Append(frame *trace.Frame) error {
	if s.wal == nil {
		return errors.New("store: session has no WAL segment (write a snapshot first)")
	}
	seq, synced, err := s.wal.append(frame)
	if err != nil {
		return err
	}
	s.applied = seq
	s.st.mAppends.Inc()
	if synced {
		s.st.mFsyncs.Inc()
	}
	return nil
}

// LastSyncNanos returns the wall time of the inline fsync carried by
// the most recent Append, or 0 when that append synced nothing (fsync
// batching, group commit, or durability off). Frame tracing uses it to
// split fsync cost out of the WAL-append stage; like every SessionStore
// method it is serialized by the owning session's step lock.
func (s *SessionStore) LastSyncNanos() int64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.syncNanos
}

// WriteSnapshot persists a checkpoint of the session at its current
// applied-frame count and rotates the WAL: the snapshot is written to a
// temporary file, fsynced, atomically renamed to snapshot-<k>, the
// directory entry fsynced, a fresh wal-<k>.ndjson started, and only
// then are older snapshot/WAL pairs removed — so every instant of the
// sequence leaves at least one recoverable (snapshot, WAL) pair on
// disk. snap.FramesApplied is set by the store; the caller fills the
// identity and state fields. Returns the encoded snapshot size.
func (s *SessionStore) WriteSnapshot(snap *Snapshot) (int, error) {
	start := time.Now()
	snap.SessionID = s.id
	snap.FramesApplied = s.applied
	data, err := EncodeSnapshot(snap)
	if err != nil {
		return 0, err
	}
	k := s.applied
	tmp, err := os.CreateTemp(s.dir, ".snapshot-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("store: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, snapshotName(k))); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: publish snapshot: %w", err)
	}
	syncDir(s.dir)

	// Rotate: further appends land in the segment paired with this
	// snapshot. Recreate (truncate) rather than append — two snapshots
	// at the same k (e.g. checkpoint with no frames in between) restart
	// the same segment, and its records are re-derived from the newer
	// snapshot anyway.
	if s.wal != nil {
		s.wal.close()
	}
	w, err := openWALTrunc(filepath.Join(s.dir, walName(k)), k, s.st.opts.FsyncEvery)
	if err != nil {
		return 0, err
	}
	s.wal = w
	s.base = k
	s.compact(k)

	s.st.mSnapBytes.Observe(float64(len(data)))
	s.st.mSnapSeconds.Observe(time.Since(start).Seconds())
	return len(data), nil
}

// compact removes snapshot/WAL files of generations other than keep.
func (s *SessionStore) compact(keep int) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return // compaction is advisory; recovery tolerates leftovers
	}
	for _, e := range entries {
		name := e.Name()
		if k, ok := snapshotIndex(name); ok && k != keep {
			os.Remove(filepath.Join(s.dir, name))
		}
		if k, ok := walIndex(name); ok && k != keep {
			os.Remove(filepath.Join(s.dir, name))
		}
		if strings.HasPrefix(name, ".snapshot-") && strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// Commit makes every frame appended so far durable under the store's
// commit policy. With group commit enabled (Options.CommitWindow > 0)
// it enlists the session in the current fleet-wide batch and blocks
// until the batch fsync — one fsync covering all sessions that enlisted
// in the window — completes; the caller must reply to its client only
// after Commit returns to preserve the replied ⇒ durable contract.
// Without group commit it is a no-op: appends already fsynced inline
// per FsyncEvery. frames is the number of appends this commit covers,
// reported to the batch-size histogram.
//
// Invariant (shared with the committer's flush): between enlisting and
// the batch completing, the caller blocks, and the caller is the only
// goroutine that touches this session's WAL — the fleet session's step
// lock serializes Append/Commit/rotate/Close — so the flush goroutine
// has exclusive access to the file handle during the group fsync.
func (s *SessionStore) Commit(frames int) error {
	if s.st.committer == nil || s.wal == nil || frames <= 0 {
		return nil
	}
	return s.st.committer.commit(s, frames)
}

// Sync forces the WAL to stable storage regardless of policy.
func (s *SessionStore) Sync() error {
	if s.wal == nil {
		return nil
	}
	s.st.mFsyncs.Inc()
	return s.wal.sync()
}

// Close releases the WAL file handle. It does not sync: callers that
// need durability checkpoint or Sync first.
func (s *SessionStore) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.close()
	s.wal = nil
	return err
}

// openWALTrunc creates or truncates the segment at path.
func openWALTrunc(path string, lastSeq, fsyncEvery int) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open WAL: %w", err)
	}
	return &walWriter{f: f, seq: lastSeq, fsyncEvery: fsyncEvery}, nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

func snapshotName(k int) string { return "snapshot-" + strconv.Itoa(k) }
func walName(k int) string      { return "wal-" + strconv.Itoa(k) + ".ndjson" }

func snapshotIndex(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "snapshot-")
	if !ok {
		return 0, false
	}
	k, err := strconv.Atoi(rest)
	if err != nil || k < 0 {
		return 0, false
	}
	return k, true
}

func walIndex(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".ndjson")
	if !ok {
		return 0, false
	}
	k, err := strconv.Atoi(rest)
	if err != nil || k < 0 {
		return 0, false
	}
	return k, true
}

// byteBuckets spans 256 B .. 16 MiB exponentially for the snapshot
// size histogram.
func byteBuckets() []float64 {
	out := make([]float64, 0, 17)
	for b := 256.0; b <= 16*1024*1024; b *= 2 {
		out = append(out, b)
	}
	return out
}

// batchBuckets spans 1 .. 4096 frames exponentially for the
// group-commit batch size histogram.
func batchBuckets() []float64 {
	out := make([]float64, 0, 13)
	for b := 1.0; b <= 4096; b *= 2 {
		out = append(out, b)
	}
	return out
}
