package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeSnapshot drives the snapshot decoder with arbitrary bytes:
// it must reject everything malformed with an error — truncations,
// bit flips, version skew, hostile length fields — and never panic.
// Accepted inputs must survive a re-encode/re-decode cycle. (Byte
// equality is deliberately not asserted: the decoder accepts any
// CRC-valid JSON payload, canonical or not.)
func FuzzDecodeSnapshot(f *testing.F) {
	valid, err := EncodeSnapshot(testSnapshot(12))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	truncVersion := append([]byte(nil), valid...)
	truncVersion[6] = 0xFF
	f.Add(truncVersion)
	f.Add([]byte("RBSNAP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		again, err := EncodeSnapshot(snap)
		if err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		snap2, err := DecodeSnapshot(again)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if snap2.SessionID != snap.SessionID || snap2.FramesApplied != snap.FramesApplied {
			t.Fatalf("snapshot changed across re-encode: %+v vs %+v", snap2, snap)
		}
	})
}

// FuzzDecodeWALRecord drives the WAL line decoder with arbitrary bytes.
// Accepted records must round-trip through EncodeWALRecord.
func FuzzDecodeWALRecord(f *testing.F) {
	line, err := EncodeWALRecord(1, testFrame(0))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(line[:len(line)-1])
	f.Add(line[:len(line)/2])
	f.Add([]byte(`{"seq":1,"crc":0,"frame":{}}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, frame, err := DecodeWALRecord(data)
		if err != nil {
			return
		}
		if _, err := EncodeWALRecord(seq, frame); err != nil {
			t.Fatalf("accepted WAL record failed to re-encode: %v", err)
		}
	})
}

// FuzzReadWALTail feeds arbitrary bytes as a WAL stream: the tail
// reader must terminate with the valid prefix and never panic,
// whatever garbage follows.
func FuzzReadWALTail(f *testing.F) {
	var buf bytes.Buffer
	for seq := 1; seq <= 3; seq++ {
		line, err := EncodeWALRecord(seq, testFrame(seq-1))
		if err != nil {
			f.Fatal(err)
		}
		buf.Write(line)
	}
	f.Add(buf.Bytes())
	f.Add(append(buf.Bytes(), []byte("garbage tail\n")...))
	f.Add([]byte("\n\n\n"))
	// Binary and mixed-format segments flow through the same reader.
	var binBuf bytes.Buffer
	binBuf.Write(buf.Bytes())
	for seq := 4; seq <= 6; seq++ {
		rec, err := AppendWALRecordBinary(nil, seq, testFrame(seq-1))
		if err != nil {
			f.Fatal(err)
		}
		binBuf.Write(rec)
	}
	f.Add(binBuf.Bytes())
	f.Add(binBuf.Bytes()[:binBuf.Len()-5])
	f.Add([]byte{walBinaryMarker, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, _, _, err := readWALTail(bytes.NewReader(data), 1)
		if err != nil {
			t.Fatalf("readWALTail returned I/O error on in-memory input: %v", err)
		}
		for i, fr := range frames {
			if fr == nil {
				t.Fatalf("frame %d is nil", i)
			}
		}
	})
}
