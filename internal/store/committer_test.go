package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"roboads/internal/telemetry"
)

// openSession creates a session with an initial snapshot so appends work.
func openSession(t *testing.T, st *Store, id string, frames int) *SessionStore {
	t.Helper()
	ss, err := st.Create(id)
	if err != nil {
		t.Fatal(err)
	}
	snap := testSnapshot(frames)
	snap.SessionID = id
	if _, err := ss.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	return ss
}

// TestGroupCommitAmortizesFsync drives several sessions' appends into
// one commit window and requires a single group fsync per dirty file —
// not one per frame — while every commit still blocks until that fsync.
func TestGroupCommitAmortizesFsync(t *testing.T) {
	reg := telemetry.NewRegistry()
	st, err := Open(t.TempDir(), Options{CommitWindow: 5 * time.Millisecond, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	const sessions, framesEach = 3, 4
	stores := make([]*SessionStore, sessions)
	for i := range stores {
		stores[i] = openSession(t, st, fmt.Sprintf("s-%d", i), 0)
	}
	fsyncsBefore := counterValue(t, reg, MetricWALFsyncs)

	var wg sync.WaitGroup
	for _, ss := range stores {
		wg.Add(1)
		go func(ss *SessionStore) {
			defer wg.Done()
			for k := 0; k < framesEach; k++ {
				if err := ss.Append(testFrame(k)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := ss.Commit(framesEach); err != nil {
				t.Error(err)
			}
		}(ss)
	}
	wg.Wait()

	// All sessions committed within (at most a few) windows: the fsync
	// count must be far below one per frame.
	fsyncs := counterValue(t, reg, MetricWALFsyncs) - fsyncsBefore
	if fsyncs == 0 || fsyncs > int64(sessions*framesEach)/2 {
		t.Fatalf("group commit issued %d fsyncs for %d appends", fsyncs, sessions*framesEach)
	}
	// And the frames are genuinely durable: recover each session.
	for i, ss := range stores {
		if err := ss.Close(); err != nil {
			t.Fatal(err)
		}
		_, snap, frames, err := st.Recover(fmt.Sprintf("s-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if snap.FramesApplied+len(frames) != framesEach {
			t.Fatalf("session %d recovered %d+%d frames, want %d", i, snap.FramesApplied, len(frames), framesEach)
		}
	}
}

// TestGroupCommitObservesMetrics pins the new batch-size and latency
// histograms: one flush covering n appends observes n once.
func TestGroupCommitObservesMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	st, err := Open(t.TempDir(), Options{CommitWindow: time.Millisecond, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ss := openSession(t, st, "s-0", 0)
	for k := 0; k < 3; k++ {
		if err := ss.Append(testFrame(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.Commit(3); err != nil {
		t.Fatal(err)
	}
	if got := histogramCount(t, reg, MetricCommitBatchFrames); got != 1 {
		t.Fatalf("batch histogram count = %d, want 1", got)
	}
	if got := histogramCount(t, reg, MetricCommitSeconds); got != 1 {
		t.Fatalf("latency histogram count = %d, want 1", got)
	}
}

// TestCommitNoopWithoutWindow pins that Commit is free when group
// commit is disabled: inline fsyncs already made the appends durable.
func TestCommitNoopWithoutWindow(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss := openSession(t, st, "s-0", 0)
	if err := ss.Append(testFrame(0)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := ss.Commit(1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("no-op Commit took %v", elapsed)
	}
}

// TestRecoverOversizeWALRecord is the regression test for the silent
// recovery data-loss bug: a legitimately huge acked frame (a dense
// lidar scan far past the old 4MiB scanner line cap) must recover
// intact — not vanish as a phantom torn tail — and be counted in the
// oversize metric.
func TestRecoverOversizeWALRecord(t *testing.T) {
	reg := telemetry.NewRegistry()
	st, err := Open(t.TempDir(), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ss := openSession(t, st, "s-0", 0)

	big := testFrame(0)
	big.Readings["lidar"] = make([]float64, 700_000) // ~5.6MB encoded
	for i := range big.Readings["lidar"] {
		big.Readings["lidar"][i] = float64(i) * 0.001
	}
	if err := ss.Append(big); err != nil {
		t.Fatal(err)
	}
	if err := ss.Append(testFrame(1)); err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	_, snap, frames, err := st.Recover("s-0")
	if err != nil {
		t.Fatal(err)
	}
	if snap.FramesApplied != 0 || len(frames) != 2 {
		t.Fatalf("recovered %d+%d frames, want 0+2", snap.FramesApplied, len(frames))
	}
	if !reflect.DeepEqual(frames[0], big) {
		t.Fatalf("oversized frame did not survive recovery intact")
	}
	if got := counterValue(t, reg, MetricWALOversize); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricWALOversize, got)
	}
}

// TestRecoverMixedFormatSegment builds the segment an in-place upgrade
// leaves behind — a JSON prefix written by the old version continued
// with binary records by the new one — and requires recovery to replay
// the whole thing, including truncating a torn binary tail.
func TestRecoverMixedFormatSegment(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss := openSession(t, st, "s-0", 0)
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the old version: overwrite the rotated segment with JSON
	// records 1..3.
	walPath := filepath.Join(dir, "s-0", walName(0))
	var seg bytes.Buffer
	for seq := 1; seq <= 3; seq++ {
		line, err := EncodeWALRecord(seq, testFrame(seq-1))
		if err != nil {
			t.Fatal(err)
		}
		seg.Write(line)
	}
	if err := os.WriteFile(walPath, seg.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// The new version recovers the JSON prefix and continues in binary.
	ss2, snap, frames, err := st.Recover("s-0")
	if err != nil {
		t.Fatal(err)
	}
	if snap.FramesApplied != 0 || len(frames) != 3 {
		t.Fatalf("recovered %d+%d frames, want 0+3", snap.FramesApplied, len(frames))
	}
	for seq := 4; seq <= 6; seq++ {
		if err := ss2.Append(testFrame(seq - 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss2.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover the mixed segment whole...
	ss3, _, frames, err := st.Recover("s-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 6 {
		t.Fatalf("mixed segment recovered %d frames, want 6", len(frames))
	}
	for i, fr := range frames {
		if !reflect.DeepEqual(fr, testFrame(i)) {
			t.Fatalf("frame %d changed across mixed recovery: %+v", i, fr)
		}
	}
	ss3.Close()

	// ...and with a torn binary tail, recover the clean prefix.
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	ss4, _, frames, err := st.Recover("s-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("torn mixed segment recovered %d frames, want 5", len(frames))
	}
	ss4.Close()
}

// TestWALRecordBinaryRoundTrip mirrors TestWALRecordRoundTrip for the
// binary record format, including bit-flip detection.
func TestWALRecordBinaryRoundTrip(t *testing.T) {
	rec, err := AppendWALRecordBinary(nil, 3, testFrame(2))
	if err != nil {
		t.Fatal(err)
	}
	seq, frame, n, err := decodeWALRecordBinary(rec)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || n != len(rec) || frame.K != 2 || frame.U[0] != 0.2 || frame.Readings["gps"][1] != 2.5 {
		t.Fatalf("round trip changed record: seq=%d n=%d frame=%+v", seq, n, frame)
	}
	if _, err := AppendWALRecordBinary(nil, 0, testFrame(0)); err == nil {
		t.Fatal("sequence 0 accepted")
	}
	if _, err := AppendWALRecordBinary(nil, 1, nil); err == nil {
		t.Fatal("nil frame accepted")
	}
	for i := range rec {
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0x08
		if s, _, _, err := decodeWALRecordBinary(mut); err == nil && mut[0] == walBinaryMarker && s == seq {
			// A flip in the length prefix can shift framing; only an
			// undetected same-seq decode is a real miss.
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func counterValue(t *testing.T, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	return reg.CounterValue(name)
}

func histogramCount(t *testing.T, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	return reg.HistogramCount(name)
}

// TestWALAppendEncodeAllocs pins the single-encode fix on the durable
// hot path: one WAL record encodes into a reused buffer in a single
// pass — no marshal-then-remarshal, no per-append payload copies. The
// one tolerated allocation is the sorted reading-name slice that keeps
// the encoding deterministic.
func TestWALAppendEncodeAllocs(t *testing.T) {
	frame := testFrame(7)
	buf, err := AppendWALRecordBinary(nil, 1, frame)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendWALRecordBinary(buf[:0], 2, frame)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("WAL append encodes with %.0f allocs, want <= 1", allocs)
	}
}
