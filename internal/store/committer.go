package store

import (
	"sync"
	"time"
)

// committer is the cross-session group-commit coordinator: it collapses
// the per-frame fsync of many sessions into one fsync per session per
// commit window. Sessions append without syncing, then enlist in the
// open batch via commit(); the first enlistment arms a timer, and when
// the window elapses every dirty session's WAL file is fsynced once and
// all waiters are released together. This is the writes/sec-vs-
// fsyncs/sec trade at fleet scope: N sessions × M frames in a window
// cost one fsync per dirty file instead of N×M.
//
// The committer has no long-lived goroutine: each batch is flushed by
// its own time.AfterFunc firing, so an idle store schedules nothing.
type committer struct {
	st     *Store
	window time.Duration

	mu      sync.Mutex
	batch   *commitBatch
	dirty   map[*SessionStore]struct{}
	appends int
}

// commitBatch is one group of appends awaiting a shared fsync.
type commitBatch struct {
	done  chan struct{} // closed after the group fsync completes
	err   error         // first fsync failure, published before done closes
	start time.Time
}

func newCommitter(st *Store, window time.Duration) *committer {
	return &committer{st: st, window: window, dirty: make(map[*SessionStore]struct{})}
}

// commit enlists ss's un-synced appends in the open batch (opening one
// and arming its flush timer if none is open) and blocks until the
// batch's group fsync covers them. See SessionStore.Commit for the
// exclusive-access invariant that makes the flush goroutine's use of
// ss.wal safe.
func (c *committer) commit(ss *SessionStore, frames int) error {
	c.mu.Lock()
	if c.batch == nil {
		b := &commitBatch{done: make(chan struct{}), start: time.Now()}
		c.batch = b
		time.AfterFunc(c.window, func() { c.flush(b) })
	}
	b := c.batch
	c.dirty[ss] = struct{}{}
	c.appends += frames
	c.mu.Unlock()

	<-b.done
	return b.err
}

// flush closes out b: it detaches the batch state under the lock (a
// commit arriving after this point opens a fresh batch), fsyncs every
// dirty session's WAL once, then releases the waiters.
func (c *committer) flush(b *commitBatch) {
	c.mu.Lock()
	if c.batch != b {
		// Stale timer; b was already flushed.
		c.mu.Unlock()
		return
	}
	dirty := c.dirty
	frames := c.appends
	c.batch = nil
	c.dirty = make(map[*SessionStore]struct{})
	c.appends = 0
	c.mu.Unlock()

	var first error
	for ss := range dirty {
		if ss.wal == nil {
			continue // session closed its WAL after enlisting — nothing to sync
		}
		if err := ss.wal.sync(); err != nil && first == nil {
			first = err
		}
		c.st.mFsyncs.Inc()
	}
	c.st.mCommitFrames.Observe(float64(frames))
	c.st.mCommitSeconds.Observe(time.Since(b.start).Seconds())
	b.err = first
	close(b.done)
}
