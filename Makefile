GO ?= go

.PHONY: build vet test race bench benchdiff ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel mode bank and the decision windows are the concurrency-
# sensitive surfaces; run them under the race detector.
race:
	$(GO) test -race ./internal/core/... ./internal/detect/...

bench:
	$(GO) test -run xxx -bench 'EngineStepParallel|EngineFleet|NUISEStep' -benchtime=1500x .

# Regression guard: re-runs the benchmark command recorded in
# BENCH_engine.json and fails if any tracked benchmark is >15% slower
# (ns/op) than the recorded baseline. Authoritative on the recording
# hardware; informational elsewhere (CI runs it with continue-on-error).
benchdiff:
	$(GO) run ./cmd/benchdiff -baseline BENCH_engine.json

ci: build vet test race
