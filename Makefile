GO ?= go

.PHONY: build vet staticcheck test race bench benchdiff benchoverhead ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck is not vendored; CI installs it with `go install`. Locally
# this target is a no-op (with a note) when the binary is absent.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 \
		&& staticcheck ./... \
		|| echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"

test:
	$(GO) test ./...

# The parallel mode bank, the decision windows, and the lock-free
# telemetry registry are the concurrency-sensitive surfaces; run them
# under the race detector.
race:
	$(GO) test -race ./internal/core/... ./internal/detect/... ./internal/telemetry/...

bench:
	$(GO) test -run xxx -bench 'EngineStepParallel|EngineFleet|NUISEStep' -benchtime=1500x .

# Regression guard: re-runs the benchmark command recorded in
# BENCH_engine.json and fails if any tracked benchmark is >15% slower
# (ns/op) than the recorded baseline. Authoritative on the recording
# hardware; informational elsewhere (CI runs it with continue-on-error).
benchdiff:
	$(GO) run ./cmd/benchdiff -baseline BENCH_engine.json

# Telemetry overhead gate: the nil-Observer engine path (and the
# enabled-path pin BenchmarkEngineStepTelemetry) must stay within 5% of
# the recorded baseline — the telemetry layer is contractually free when
# disabled. The 5% threshold is tighter than single-run noise on shared
# hardware, so the gate compares the fastest of three long runs (-best).
benchoverhead:
	$(GO) run ./cmd/benchdiff -baseline BENCH_engine.json -threshold 0.05 -best \
		-only '^BenchmarkEngineStep(Telemetry)?$$' \
		-command "$(GO) test -run xxx -bench '^BenchmarkEngineStep(Telemetry)?$$' -benchtime=20000x -count=3 ."

ci: build vet test race
