GO ?= go

.PHONY: build vet staticcheck test race fleetsoak crashsoak fleetbatch fuzz bench benchbatch benchdiff benchoverhead loadgensmoke multinodesmoke scenariosmoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck is not vendored; CI installs it with `go install`. Locally
# this target is a no-op (with a note) when the binary is absent.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 \
		&& staticcheck ./... \
		|| echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"

test:
	$(GO) test ./...

# The parallel mode bank, the decision windows, the lock-free telemetry
# registry, and the fleet session manager are the concurrency-sensitive
# surfaces; run them under the race detector.
race:
	$(GO) test -race ./internal/core/... ./internal/detect/... ./internal/telemetry/... ./internal/fleet/...

# Fleet soak: the multi-session service suite under the race detector —
# N concurrent sessions bit-for-bit equal to N sequential detectors,
# backpressure/eviction/drain, the 32-session live-server acceptance
# run, and the remote trace replay round trip.
fleetsoak:
	$(GO) test -race -count=1 ./internal/fleet/...
	$(GO) test -race -count=1 -run 'TestServeFleet|TestReplayRemote' ./cmd/roboads/

# Crash soak: the durability acceptance run — a 32-session live server
# killed with SIGKILL mid-stream, restarted on the same state directory,
# every acknowledged frame recovered and the continued report streams
# bit-for-bit equal to uninterrupted runs. Runs under the race detector
# (the helper server process inherits the instrumented binary).
crashsoak:
	ROBOADS_CRASH_SESSIONS=32 $(GO) test -race -count=1 -timeout 10m \
		-run TestServeCrashRecovery ./cmd/roboads/
	$(GO) test -race -count=1 -run 'TestFleetDurable|TestFleetRecovery|TestFleetEviction|TestFleetCheckpoint' ./internal/fleet/

# Batched-stepping determinism suite under the race detector (DESIGN.md
# §13): blocked kernels vs scalar (mat), the engine batch including
# forced scalar fallback (core), the K ∈ {1,2,7,64} sweep over every
# Table II and Tamiya scenario (eval), and the fleet scheduler's
# coalesced quanta with concurrent mixed-profile ingest and durability
# on (fleet). Everything asserts bit-for-bit equality with the scalar
# path. The eval sweep replays full missions under -race, hence the
# long timeout.
fleetbatch:
	$(GO) test -race -count=1 -run 'TestBatchKernelsMatchScalar|TestCholBatchMatchesScalar|TestViewBatchBindsExternalStorage|TestSlabCarving' ./internal/mat/
	$(GO) test -race -count=1 -run 'TestEngineBatch' ./internal/core/
	$(GO) test -race -count=1 -run 'TestFleetBatch' ./internal/fleet/
	$(GO) test -race -count=1 -timeout 30m -run 'TestBatchedStep' ./internal/eval/

# Fuzz smoke: each decoder target gets a short native-fuzzing burst
# (go test -fuzz accepts one target per invocation). The corpus grows in
# testdata/fuzz and regressions replay as ordinary seed tests.
fuzz:
	$(GO) test -run xxx -fuzz FuzzDecodeSnapshot -fuzztime 15s ./internal/store/
	$(GO) test -run xxx -fuzz FuzzDecodeWALRecord -fuzztime 15s ./internal/store/
	$(GO) test -run xxx -fuzz FuzzReadWALTail -fuzztime 15s ./internal/store/
	$(GO) test -run xxx -fuzz FuzzTraceReader -fuzztime 15s ./internal/trace/
	$(GO) test -run xxx -fuzz FuzzFrameRecord -fuzztime 15s ./internal/trace/
	$(GO) test -run xxx -fuzz FuzzWireDecode -fuzztime 15s ./internal/fleet/
	$(GO) test -run xxx -fuzz FuzzFrameBatch -fuzztime 15s ./internal/fleet/
	$(GO) test -run xxx -fuzz FuzzScenarioDecode -fuzztime 15s ./internal/scenario/

bench:
	$(GO) test -run xxx -bench 'EngineStepParallel|EngineFleet|FleetStep|NUISEStep' -benchtime=1500x .

# Batching speedup report: the scalar-vs-blocked fleet stepping pair
# (compare the sessions/core metrics of EngineFleet and
# EngineFleetBatched at matching robot counts) and the end-to-end
# ingest pair (fleet16-scalar vs fleet16-batched frames/s over real
# HTTP with group commit).
benchbatch:
	$(GO) test -run xxx -bench 'BenchmarkEngineFleet|BenchmarkIngestE2E/fleet16' -benchtime=1500x .

# Regression guard: re-runs the benchmark command recorded in
# BENCH_engine.json and fails if any tracked benchmark is >15% slower
# (ns/op) than the recorded baseline. Authoritative on the recording
# hardware; informational elsewhere (CI runs it with continue-on-error).
benchdiff:
	$(GO) run ./cmd/benchdiff -baseline BENCH_engine.json

# Overhead gate: the nil-Observer, nil-fleet engine path (and the
# enabled-path pin BenchmarkEngineStepTelemetry) must stay within 5% of
# the recorded baseline — the telemetry layer is contractually free when
# disabled, and the fleet session service is a layer above the engine,
# so hosting a fleet must not tax an in-process detector at all.
# BenchmarkFleetStep rides the same gate to pin the batching-DISABLED
# fleet quantum: with Config.Batching unset the scheduler must serve
# frames through the scalar path at the pre-batching cost (the only
# addition is one nil-map check per quantum). The 5% threshold is
# tighter than single-run noise on shared hardware, so the gate compares
# the fastest of three long runs (-best); all three baseline entries are
# recorded under the same best-of-3 protocol. -allocs additionally pins
# allocs/op at the recorded counts exactly — allocations are
# deterministic, so disabled frame tracing (a nil Tracer in the fleet
# config) showing even one extra alloc per frame fails the gate.
benchoverhead:
	$(GO) run ./cmd/benchdiff -baseline BENCH_engine.json -threshold 0.05 -best -allocs \
		-only '^BenchmarkEngineStep(Telemetry)?$$|^BenchmarkFleetStep$$' \
		-command "$(GO) test -run xxx -bench '^BenchmarkEngineStep(Telemetry)?$$|^BenchmarkFleetStep$$' -benchtime=20000x -count=3 ."

# Serving-stack smoke (DESIGN.md §14): build the real binary, let
# loadgen spawn it with tracing and group commit on, drive 8 sessions in
# lockstep batches for ~10s with a kill -9 at half time, and require the
# server's per-stage p50 attribution to sum within 10% of its end-to-end
# p50. Appends a record to BENCH_serve.json and gates it against the
# most recent same-shape record via benchdiff -serve.
loadgensmoke:
	$(GO) build -o /tmp/roboads-loadgen ./cmd/roboads
	$(GO) run ./cmd/loadgen -spawn -roboads /tmp/roboads-loadgen \
		-sessions 8 -duration 10s -batch 4 -crash \
		-check-attribution 0.10 -label smoke -out BENCH_serve.json
	$(GO) run ./cmd/benchdiff -serve BENCH_serve.json -threshold 0.5

# Multi-node smoke (DESIGN.md §15): loadgen spawns three serve nodes
# plus a router and drives 16 sessions through the router — live
# migrations to the next-ranked node at half time plus a kill -9 of the
# first node, with the run required to finish every session through the
# failover. Appends a record to BENCH_serve.json and gates it against
# the most recent same-shape record. Then the replication acceptance
# e2e: a primary/follower pair under -ack-policy=follower, a mid-stream
# migration, a SIGKILL of the primary, follower self-promotion, and a
# bit-for-bit resume of every session's report stream.
multinodesmoke:
	$(GO) build -o /tmp/roboads-multinode ./cmd/roboads
	$(GO) run ./cmd/loadgen -spawn -roboads /tmp/roboads-multinode \
		-nodes 3 -sessions 16 -duration 10s -batch 4 -crash -migrate \
		-label multinode -out BENCH_serve.json
	$(GO) run ./cmd/benchdiff -serve BENCH_serve.json -threshold 0.5
	$(GO) test -count=1 -run TestMultinodeFailoverMigration ./cmd/roboads/

# Detection-quality smoke (DESIGN.md §16): generate the default
# adversarial suite (all Table II + Tamiya scenarios, the stealthy /
# coordinated / intermittent / ramp / environment adversaries), run it
# through the real detector path, append a leaderboard record to
# BENCH_quality.json, and gate it against the most recent same-shape
# record via benchdiff -quality — detection delay, per-scenario FPR, and
# missed detections may not regress. Results are bit-for-bit
# reproducible from {seed, DSL}, so the gate is authoritative on any
# machine (the first run of a new suite shape passes informationally).
scenariosmoke:
	$(GO) run ./cmd/roboads scenario gen -seed 42 -o /tmp/roboads-suite.json
	$(GO) run ./cmd/roboads scenario run -i /tmp/roboads-suite.json \
		-workers 4 -label default -out BENCH_quality.json
	$(GO) run ./cmd/benchdiff -quality BENCH_quality.json

ci: build vet test race
