GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel mode bank and the decision windows are the concurrency-
# sensitive surfaces; run them under the race detector.
race:
	$(GO) test -race ./internal/core/... ./internal/detect/...

bench:
	$(GO) test -run xxx -bench 'EngineStepParallel|EngineFleet|NUISEStep' -benchtime=1500x .

ci: build vet test race
