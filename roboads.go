// Package roboads is a Go implementation of RoboADS, the robot anomaly
// detection system of Guo et al., "RoboADS: Anomaly Detection against
// Sensor and Actuator Misbehaviors in Mobile Robots" (DSN 2018).
//
// RoboADS detects two classes of active misbehavior in mobile robots —
// corrupted sensor readings (GPS/IPS spoofing, LiDAR jamming, encoder
// logic bombs) and corrupted control commands (actuator takeover, wheel
// jamming) — using only the robot's kinematic model and the analytical
// redundancy between its sensors. Per control iteration it runs a bank
// of NUISE estimators (nonlinear unknown input and state estimation),
// one per sensor-condition hypothesis, selects the most likely
// hypothesis, and confirms misbehaviors with windowed chi-square tests.
//
// # Quick start
//
//	scenario := roboads.IPSSpoofingScenario()
//	system, err := roboads.NewKheperaSystem(scenario, 1)
//	if err != nil { ... }
//	for {
//		rec, report, err := system.Step()
//		if errors.Is(err, roboads.ErrMissionOver) {
//			break
//		}
//		if report.Decision.SensorAlarm {
//			fmt.Println("sensor misbehavior:", report.Decision.Condition)
//		}
//		_ = rec
//	}
//
// The package re-exports the full component API (estimators, sensor and
// dynamics models, attack injection, metrics, experiment harness) so a
// downstream system can assemble a detector for its own robot: implement
// Model for the kinematics and Sensor for each sensing workflow, build
// modes with SingleReferenceModes or LeaveOneOutModes, and drive a
// Detector with planned commands and readings.
//
// # Building pipelines
//
// NewPipeline and NewRobotDetector are the construction surface: the
// paper-default configuration modified by functional options
// (WithWorkers, WithSensorAlpha, WithObserver, ...). NewRobotDetector
// builds the standard detector for a named platform with no simulator
// attached — the same construction a hosted fleet session uses.
//
// # Serving a fleet
//
// NewFleet hosts many concurrent detectors behind a streaming ingest
// API with bounded queues, explicit backpressure, and idle eviction;
// Fleet.Handler exposes it over HTTP (the `roboads serve` surface).
// Errors are typed sentinels (ErrSessionNotFound, ErrBackpressure,
// ErrClosed, ErrTooManySessions) stable under errors.Is.
package roboads

import (
	"errors"

	"roboads/internal/attack"
	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/dynamics"
	"roboads/internal/eval"
	"roboads/internal/forensics"
	"roboads/internal/mat"
	"roboads/internal/metrics"
	"roboads/internal/plan"
	"roboads/internal/sensors"
	"roboads/internal/sim"
	"roboads/internal/stat"
	"roboads/internal/telemetry"
	"roboads/internal/trace"
	"roboads/internal/world"
)

// Core linear algebra and probability types.
type (
	// Vec is a dense vector.
	Vec = mat.Vec
	// Matrix is a dense matrix.
	Matrix = mat.Mat
	// RNG is the deterministic random source used across the system.
	RNG = stat.RNG
)

// Robot modeling types.
type (
	// Model is a discrete-time kinematic model x_k = f(x_{k-1}, u_{k-1}).
	Model = dynamics.Model
	// DifferentialDrive is the Khepera III drive model.
	DifferentialDrive = dynamics.DifferentialDrive
	// Bicycle is the Tamiya RC car model.
	Bicycle = dynamics.Bicycle
	// Sensor is one sensing workflow's measurement model.
	Sensor = sensors.Sensor
	// Map is the 2D arena with walls and obstacles.
	Map = world.Map
	// Point is a 2D position.
	Point = world.Point
	// Mission is a start-to-goal task in an arena.
	Mission = sim.Mission
)

// Estimation and detection types.
type (
	// Plant bundles the model and noise statistics for estimation.
	Plant = core.Plant
	// Mode is one sensor-condition hypothesis.
	Mode = core.Mode
	// Engine is the multi-mode estimation engine.
	Engine = core.Engine
	// EngineConfig tunes the engine.
	EngineConfig = core.EngineConfig
	// EstimationResult is one NUISE step's output.
	EstimationResult = core.Result
	// Detector is the full RoboADS pipeline.
	Detector = detect.Detector
	// DetectorConfig holds the decision parameters (α, w, c).
	DetectorConfig = detect.Config
	// Report is one control iteration's detector output.
	Report = detect.Report
	// Decision is the decision maker's per-iteration output.
	Decision = detect.Decision
	// Condition is a confirmed misbehavior condition.
	Condition = detect.Condition
)

// Attack and evaluation types.
type (
	// Scenario is a timed set of sensor/actuator corruptions.
	Scenario = attack.Scenario
	// SensorAttack corrupts a sensing workflow.
	SensorAttack = attack.SensorAttack
	// ActuatorAttack corrupts executed commands.
	ActuatorAttack = attack.ActuatorAttack
	// Confusion accumulates TP/FP/FN/TN per the paper's definitions.
	Confusion = metrics.Confusion
	// MissionRun is a full recorded mission with detector trace.
	MissionRun = eval.Run
	// StepRecord is one simulator iteration's ground truth and readings.
	StepRecord = sim.StepRecord
)

// Re-exported constructors and helpers.
var (
	// NewKheperaModel returns the differential drive model (§V-A).
	NewKheperaModel = dynamics.NewKhepera
	// NewTamiyaModel returns the kinematic bicycle model (§V-D).
	NewTamiyaModel = dynamics.NewTamiya
	// NewIPS, NewWheelEncoder, NewLidar, NewIMU, NewGPS and
	// NewMagnetometer build the paper's sensing workflow models.
	NewIPS          = sensors.NewIPS
	NewWheelEncoder = sensors.NewWheelEncoder
	NewLidar        = sensors.NewLidar
	NewIMU          = sensors.NewIMU
	NewGPS          = sensors.NewGPS
	NewMagnetometer = sensors.NewMagnetometer
	// Observable checks the §VI reference observability requirement.
	Observable = sensors.Observable
	// NewMode builds a single sensor-condition hypothesis.
	NewMode = core.NewMode
	// SingleReferenceModes builds the paper's default mode set.
	SingleReferenceModes = core.SingleReferenceModes
	// LeaveOneOutModes builds grouped-reference modes (§VI grouping).
	LeaveOneOutModes = core.LeaveOneOutModes
	// CompleteModes builds all 2^p−1 hypotheses.
	CompleteModes = core.CompleteModes
	// FusionMode builds the all-reference fusion mode (Table IV).
	FusionMode = core.FusionMode
	// NUISE runs one step of Algorithm 2 directly.
	NUISE = core.NUISE
	// NewEngine builds a multi-mode engine.
	NewEngine = core.NewEngine
	// DefaultEngineConfig returns the experiment engine configuration.
	DefaultEngineConfig = core.DefaultEngineConfig
	// NewDetector wires an engine to a decision maker. Most callers
	// want NewPipeline or NewRobotDetector (options.go) instead; this
	// low-level form remains for code that holds the engine directly.
	NewDetector = detect.NewDetector
	// DefaultDetectorConfig returns the §V-F optimal decision parameters.
	DefaultDetectorConfig = detect.DefaultConfig
	// NewRNG returns a deterministic random source.
	NewRNG = stat.NewRNG
	// NewVec, NewMatrix, Identity and Diag build vectors and matrices.
	NewVec    = mat.VecOf
	NewMatrix = mat.New
	Identity  = mat.Identity
	Diag      = mat.Diag
	// LabArena returns the default 4×4 m experiment arena.
	LabArena = world.LabArena
	// WarehouseArena returns the larger shelf-row environment.
	WarehouseArena = world.WarehouseArena
	// LabMission returns the default start-to-goal mission.
	LabMission = sim.LabMission
	// PlanPath runs the RRT* planner.
	PlanPath = plan.Plan
	// KheperaScenarios returns the 11 Table II attack/failure scenarios.
	KheperaScenarios = attack.KheperaScenarios
	// TamiyaScenarios returns the §V-D RC-car scenario suite.
	TamiyaScenarios = attack.TamiyaScenarios
	// CleanScenario returns the no-attack mission.
	CleanScenario = attack.CleanScenario
)

// Forensics and response types (§VII future-work directions).
type (
	// Incident is a forensic record of one confirmed misbehavior.
	Incident = forensics.Incident
	// IncidentAnalyzer accumulates decisions into incident records.
	IncidentAnalyzer = forensics.Analyzer
	// Responder quarantines confirmed-corrupted sensors and rebuilds
	// the detector on the clean suite.
	Responder = forensics.Responder
)

// Forensics constructors.
var (
	// NewIncidentAnalyzer returns an empty forensic analyzer.
	NewIncidentAnalyzer = forensics.NewAnalyzer
	// NewResponder builds a sensor-quarantine responder.
	NewResponder = forensics.NewResponder
)

// Trace record/replay types for offline detection on recorded missions.
type (
	// TraceRecorder writes monitor inputs as a JSON-lines stream.
	TraceRecorder = trace.Recorder
	// TraceReader consumes a recorded stream.
	TraceReader = trace.Reader
	// TraceHeader identifies a trace stream.
	TraceHeader = trace.Header
	// TraceFrame is one recorded control iteration.
	TraceFrame = trace.Frame
)

// Trace constructors and replay.
var (
	// NewTraceRecorder starts a trace stream.
	NewTraceRecorder = trace.NewRecorder
	// NewTraceReader parses a trace stream.
	NewTraceReader = trace.NewReader
	// ReplayTrace feeds a recorded mission through a detector offline.
	ReplayTrace = trace.Replay
)

// Telemetry types (DESIGN.md §9). A *Telemetry implements both observer
// hooks: set it as EngineConfig.Observer and DetectorConfig.Observer,
// then expose it over HTTP with Serve or Handler. A nil observer
// disables instrumentation entirely.
type (
	// Telemetry aggregates metrics, sampled logs, and the HTTP surface.
	Telemetry = telemetry.Telemetry
	// TelemetryOptions configures logging and histogram buckets.
	TelemetryOptions = telemetry.Options
	// TelemetrySnapshot is the /snapshot document: iteration, selected
	// mode, last decision, and a full metrics dump.
	TelemetrySnapshot = telemetry.Snapshot
)

// NewTelemetry builds a telemetry hub; the zero Options gives metrics
// and the HTTP surface with logging disabled.
var NewTelemetry = telemetry.New

// Metric names served by a Telemetry (DESIGN.md §9 is the inventory).
const (
	MetricStepSeconds      = telemetry.MetricStepSeconds
	MetricModeSeconds      = telemetry.MetricModeSeconds
	MetricPoolWaitSeconds  = telemetry.MetricPoolWaitSeconds
	MetricFrameGapSeconds  = telemetry.MetricFrameGapSeconds
	MetricStepsTotal       = telemetry.MetricStepsTotal
	MetricModeSwitches     = telemetry.MetricModeSwitches
	MetricFloorHits        = telemetry.MetricFloorHits
	MetricModeFailures     = telemetry.MetricModeFailures
	MetricJacobiFallbacks  = telemetry.MetricJacobiFallbacks
	MetricDroppedReadings  = telemetry.MetricDroppedReadings
	MetricDecisionsTotal   = telemetry.MetricDecisionsTotal
	MetricConditionChanges = telemetry.MetricConditionChanges
	MetricAlarmEdges       = telemetry.MetricAlarmEdges
	MetricTopWeight        = telemetry.MetricTopWeight
	MetricSecondWeight     = telemetry.MetricSecondWeight
	MetricSensorStat       = telemetry.MetricSensorStat
	MetricActuatorStat     = telemetry.MetricActuatorStat
	MetricSensorWindow     = telemetry.MetricSensorWindow
	MetricActuatorWindow   = telemetry.MetricActuatorWindow
)

// ErrMissionOver is returned by System.Step once the mission goal has
// been reached.
var ErrMissionOver = sim.ErrMissionOver

// IPSSpoofingScenario returns Table II scenario #4 (IPS spoofing), the
// quick-start example attack.
func IPSSpoofingScenario() Scenario {
	return attack.KheperaScenarios()[3]
}

// System couples a simulated robot mission with a RoboADS detector: each
// Step advances the physics one control iteration and runs the detector
// on the resulting monitor inputs.
type System struct {
	sim      *sim.Simulator
	detector *detect.Detector
	dt       float64
}

// NewKheperaSystem plans a mission for the Khepera robot in the lab
// arena, wires the given attack scenario into its workflows, and attaches
// a RoboADS detector with the paper's decision parameters. The same seed
// reproduces the same run bit-for-bit.
func NewKheperaSystem(scenario Scenario, seed int64) (*System, error) {
	return NewKheperaSystemWithMission(sim.LabMission(), scenario, seed)
}

// NewKheperaSystemWithMission is NewKheperaSystem with a custom arena and
// start/goal.
func NewKheperaSystemWithMission(mission Mission, scenario Scenario, seed int64) (*System, error) {
	setup, err := sim.NewKhepera(mission, &scenario, seed)
	if err != nil {
		return nil, err
	}
	det, err := eval.KheperaDetector(setup, detect.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &System{sim: setup.Sim, detector: det, dt: sim.KheperaDt}, nil
}

// NewTamiyaSystem is the RC-car counterpart of NewKheperaSystem (§V-D).
func NewTamiyaSystem(scenario Scenario, seed int64) (*System, error) {
	setup, err := sim.NewTamiya(sim.LabMission(), &scenario, seed)
	if err != nil {
		return nil, err
	}
	det, err := eval.TamiyaDetector(setup, detect.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &System{sim: setup.Sim, detector: det, dt: sim.TamiyaDt}, nil
}

// Step advances the closed loop one control iteration and returns the
// simulator record (ground truth) plus the detector report. It returns
// ErrMissionOver once the robot has reached its goal.
func (s *System) Step() (*StepRecord, *Report, error) {
	rec, err := s.sim.Step()
	if err != nil {
		return nil, nil, err
	}
	report, err := s.detector.Step(rec.UPlanned, rec.Readings)
	if err != nil {
		return rec, nil, err
	}
	return rec, report, nil
}

// Dt returns the control iteration period in seconds.
func (s *System) Dt() float64 { return s.dt }

// State returns the detector's fused state estimate.
func (s *System) State() (Vec, *Matrix) { return s.detector.State() }

// Experiment entry points (see DESIGN.md §4 for the per-experiment
// index; EXPERIMENTS.md records paper-vs-measured results).
var (
	// ReproduceTable2 regenerates Table II.
	ReproduceTable2 = eval.Table2
	// ReproduceTable4 regenerates Table IV.
	ReproduceTable4 = eval.Table4
	// ReproduceFig6 regenerates the Fig. 6 raw-output series.
	ReproduceFig6 = eval.Fig6
	// ReproduceEvasive regenerates the §V-H stealthy-attack sweeps.
	ReproduceEvasive = eval.Evasive
	// ReproduceTamiya regenerates the §V-D RC-car results.
	ReproduceTamiya = eval.Tamiya
	// ReproduceLinearBench regenerates the §V-G baseline comparison.
	ReproduceLinearBench = eval.LinearBench
	// CompareRelatedWork benchmarks the §II-C detector families.
	CompareRelatedWork = eval.RelatedWork
	// SweepSensorQuality runs the §V-E sensor-quality sweep.
	SweepSensorQuality = eval.SensorQuality
	// CalibrateDecisionParameters auto-selects (α, w, c) from a
	// validation workload (§V-F as a library call).
	CalibrateDecisionParameters = eval.Calibrate
)

// RunScenario executes one full Khepera mission under the scenario and
// returns the recorded run for metric extraction.
func RunScenario(scenario Scenario, seed int64) (*MissionRun, error) {
	return eval.RunKheperaScenario(scenario, seed, detect.DefaultConfig(), eval.KheperaDetector)
}

// ErrNoPath re-exports the planner's failure sentinel.
var ErrNoPath = plan.ErrNoPath

// Sanity check that aliased sentinels remain comparable with errors.Is.
var _ = errors.Is
