// RC car (§V-D): run the Tamiya bicycle-model robot under a throttle
// logic bomb and watch the actuator misbehavior being detected and
// quantified — on a dynamic model entirely different from the
// differential drive, demonstrating the generalizability claim.
//
//	go run ./examples/rccar
package main

import (
	"errors"
	"fmt"
	"log"

	"roboads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Tamiya scenario #101: a logic bomb in the throttle-by-wire path
	// biases the executed acceleration by +0.6 m/s² from t=6s — the
	// unintended-acceleration class of failure (Table I).
	scenario := roboads.TamiyaScenarios()[0]
	fmt.Printf("scenario: %v\n  %s\n\n", &scenario, scenario.Description)

	system, err := roboads.NewTamiyaSystem(scenario, 2)
	if err != nil {
		return err
	}

	var firstAlarm float64 = -1
	var daSum roboads.Vec = roboads.NewVec(0, 0)
	samples := 0
	for {
		rec, report, err := system.Step()
		if errors.Is(err, roboads.ErrMissionOver) {
			break
		}
		if err != nil {
			return err
		}
		t := float64(rec.K) * system.Dt()
		if report.Decision.ActuatorAlarm {
			if firstAlarm < 0 {
				firstAlarm = t
				fmt.Printf("t=%.1fs: actuator misbehavior confirmed (attack onset t=6.0s)\n", t)
			}
			daSum = daSum.Add(report.Decision.Da)
			samples++
		}
		if rec.Done || t > 40 {
			break
		}
	}
	if firstAlarm < 0 {
		return errors.New("throttle logic bomb went undetected")
	}
	mean := daSum.Scale(1 / float64(samples))
	fmt.Printf("quantified anomaly over %d alarmed iterations: d̂a = (%.3f m/s², %.4f rad)\n",
		samples, mean[0], mean[1])
	fmt.Println("injected: (+0.600 m/s², 0 rad)")
	return nil
}
