// Fleet monitoring over the session service: host one RoboADS detector
// per robot behind the streaming ingest API (the `roboads serve`
// surface), stream each robot's frames over HTTP, and aggregate the
// confirmed misbehaviors into a single operations report — the
// deployment shape the paper's warehouse-robot motivation implies.
//
// The example starts the fleet service in-process, then plays four
// robots against it: each goroutine simulates its robot locally (with
// its own detector, as a reference) and forwards every frame to its
// hosted session with POST /v1/sessions/{id}/step, handling 429
// backpressure with the Retry-After hint. The hosted sessions are built
// from the same robot profile, so the remote verdicts match the local
// ones exactly.
//
//	go run ./examples/fleet
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"roboads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The service: a telemetry hub plus a fleet manager wired into its
	// metric registry, mounted together on one listener — exactly what
	// `roboads serve` runs.
	tel := roboads.NewTelemetry(roboads.TelemetryOptions{})
	mgr, err := roboads.NewFleet(roboads.FleetConfig{
		Build:   roboads.DefaultFleetBuilder(),
		Metrics: tel.Registry(),
	})
	if err != nil {
		return err
	}
	srv, addr, err := tel.ServeWith("127.0.0.1:0", map[string]http.Handler{"/v1/": mgr.Handler()})
	if err != nil {
		return err
	}
	base := "http://" + addr.String()
	fmt.Printf("fleet service on %s\n", base)

	// Four robots: two clean, one under IPS spoofing, one under wheel
	// jamming. Each is monitored remotely through its hosted session.
	scenarios := []roboads.Scenario{
		roboads.CleanScenario(),
		roboads.KheperaScenarios()[3], // robot 1: IPS spoofing
		roboads.CleanScenario(),
		roboads.KheperaScenarios()[1], // robot 3: wheel jamming
	}
	type verdict struct {
		condition string // first confirmed non-clean condition
		atSec     float64
		frames    int
		err       error
	}
	verdicts := make([]verdict, len(scenarios))
	done := make(chan int)
	for i, scenario := range scenarios {
		go func(robot int, scenario roboads.Scenario) {
			defer func() { done <- robot }()
			v := &verdicts[robot]
			v.condition, v.atSec, v.frames, v.err = monitorRobot(base, robot, scenario)
		}(i, scenario)
	}
	for range scenarios {
		<-done
	}

	fmt.Printf("fleet report: %d robots\n", len(scenarios))
	for robot, v := range verdicts {
		switch {
		case v.err != nil:
			return fmt.Errorf("robot %d: %w", robot, v.err)
		case v.condition == "":
			fmt.Printf("  robot %d: clean (%d frames streamed)\n", robot, v.frames)
		default:
			fmt.Printf("  robot %d: confirmed %s at t=%.1fs (%d frames streamed)\n",
				robot, v.condition, v.atSec, v.frames)
		}
	}

	// The service's own view: the fleet gauges on /metrics.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	exposition, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{roboads.MetricFleetFrames, roboads.MetricFleetSessionsOpened} {
		if !bytes.Contains(exposition, []byte(name)) {
			return fmt.Errorf("/metrics missing %s", name)
		}
	}
	fmt.Printf("service metrics: %s and %s exported on /metrics\n",
		roboads.MetricFleetFrames, roboads.MetricFleetSessionsOpened)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		return err
	}
	return srv.Shutdown(ctx)
}

// monitorRobot simulates one robot's mission locally and mirrors every
// frame into a hosted session, returning the first confirmed misbehavior
// the *remote* detector reports. The local detector runs too, purely to
// cross-check that the hosted verdicts are identical.
func monitorRobot(base string, robot int, scenario roboads.Scenario) (condition string, atSec float64, frames int, err error) {
	system, err := roboads.NewKheperaSystem(scenario, int64(100+robot))
	if err != nil {
		return "", 0, 0, err
	}

	info, err := createSession(base, "khepera")
	if err != nil {
		return "", 0, 0, err
	}
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+info.ID, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()

	// Isolated one-iteration alarms are the detector's (small) false
	// positive rate, not an incident; report only sustained records.
	const sustainedAlarms = 10
	streak := 0
	for frames < 700 {
		rec, localReport, err := system.Step()
		if errors.Is(err, roboads.ErrMissionOver) {
			break
		}
		if err != nil {
			return "", 0, frames, err
		}
		line, err := stepRemote(base, info.ID, roboads.TraceFrame{
			K:        rec.K,
			U:        rec.UPlanned,
			Readings: frameReadings(rec.Readings),
		})
		if err != nil {
			return "", 0, frames, err
		}
		frames++
		if got, want := line.Report.Condition, localReport.Decision.Condition.String(); got != want {
			return "", 0, frames, fmt.Errorf("k=%d: remote verdict %q != local %q", rec.K, got, want)
		}
		alarmed := (line.Report.SensorAlarm || line.Report.ActuatorAlarm) && line.Report.Condition != "S0/A0"
		if alarmed {
			streak++
			if condition == "" && streak >= sustainedAlarms {
				condition = line.Report.Condition
				atSec = float64(rec.K) * system.Dt()
			}
		} else {
			streak = 0
		}
		if rec.Done {
			break
		}
	}
	return condition, atSec, frames, nil
}

// stepRemote posts one frame to the single-frame endpoint, honoring the
// 429 backpressure contract: wait the hinted interval and resubmit.
func stepRemote(base, id string, frame roboads.TraceFrame) (roboads.ReplyLine, error) {
	body, err := json.Marshal(frame)
	if err != nil {
		return roboads.ReplyLine{}, err
	}
	for {
		resp, err := http.Post(base+"/v1/sessions/"+id+"/step", "application/json", bytes.NewReader(body))
		if err != nil {
			return roboads.ReplyLine{}, err
		}
		var line roboads.ReplyLine
		decErr := json.NewDecoder(resp.Body).Decode(&line)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			delay := time.Duration(line.RetryAfterMs) * time.Millisecond
			if delay <= 0 {
				delay = 25 * time.Millisecond
			}
			time.Sleep(delay)
			continue
		}
		if decErr != nil {
			return roboads.ReplyLine{}, fmt.Errorf("step k=%d: status %d: %v", frame.K, resp.StatusCode, decErr)
		}
		if line.Error != "" || line.Report == nil {
			return roboads.ReplyLine{}, fmt.Errorf("step k=%d: %s", frame.K, line.Error)
		}
		return line, nil
	}
}

func createSession(base, robot string) (roboads.SessionInfo, error) {
	body, _ := json.Marshal(roboads.SessionRequest{Robot: robot})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return roboads.SessionInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return roboads.SessionInfo{}, fmt.Errorf("create session: status %d: %s", resp.StatusCode, msg)
	}
	var info roboads.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return roboads.SessionInfo{}, err
	}
	return info, nil
}

func frameReadings(readings map[string]roboads.Vec) map[string][]float64 {
	out := make(map[string][]float64, len(readings))
	for name, z := range readings {
		out[name] = z
	}
	return out
}
