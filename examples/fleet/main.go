// Fleet monitoring: run a warehouse fleet of robots concurrently, one
// RoboADS detector per robot, and aggregate confirmed misbehaviors into
// a single operations report — the deployment shape the paper's
// warehouse-robot motivation implies.
//
// Each robot runs in its own goroutine with an independent random seed
// and scenario; the monitor collects alarm events over a channel and
// shuts down cleanly once every mission completes.
//
//	go run ./examples/fleet
package main

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"

	"roboads"
)

// alarmEvent is one confirmed misbehavior on one robot.
type alarmEvent struct {
	robot     int
	timeSec   float64
	condition string
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A six-robot fleet: most run clean missions, two are under attack.
	scenarios := []roboads.Scenario{
		roboads.CleanScenario(),
		roboads.KheperaScenarios()[3], // robot 1: IPS spoofing
		roboads.CleanScenario(),
		roboads.KheperaScenarios()[1], // robot 3: wheel jamming
		roboads.CleanScenario(),
		roboads.CleanScenario(),
	}

	events := make(chan alarmEvent)
	var wg sync.WaitGroup
	errs := make([]error, len(scenarios))

	for i, scenario := range scenarios {
		wg.Add(1)
		go func(robot int, scenario roboads.Scenario) {
			defer wg.Done()
			errs[robot] = monitorRobot(robot, scenario, events)
		}(i, scenario)
	}

	// Close the event stream once every robot has finished.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
		close(events)
	}()

	// Aggregate: collect every alarm, then report only robots with a
	// *sustained* alarm record — isolated one-iteration blips are the
	// detector's (small) false positive rate, not an incident.
	const sustainedAlarms = 10
	counts := make(map[int]int)
	firstAlarm := make(map[int]alarmEvent)
	total := 0
	for ev := range events {
		total++
		counts[ev.robot]++
		if _, seen := firstAlarm[ev.robot]; !seen {
			firstAlarm[ev.robot] = ev
		}
	}
	for robot, n := range counts {
		if n < sustainedAlarms {
			delete(firstAlarm, robot)
		}
	}
	<-done
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	fmt.Printf("fleet report: %d robots, %d alarm iterations\n", len(scenarios), total)
	robots := make([]int, 0, len(firstAlarm))
	for r := range firstAlarm {
		robots = append(robots, r)
	}
	sort.Ints(robots)
	for _, r := range robots {
		ev := firstAlarm[r]
		fmt.Printf("  robot %d: first confirmed %s at t=%.1fs\n", r, ev.condition, ev.timeSec)
	}
	for i := range scenarios {
		if _, alarmed := firstAlarm[i]; !alarmed {
			fmt.Printf("  robot %d: clean\n", i)
		}
	}
	if len(firstAlarm) != 2 {
		return fmt.Errorf("expected alarms on exactly robots 1 and 3, got %v", robots)
	}
	return nil
}

// monitorRobot drives one robot's warehouse mission to completion,
// emitting an event for every confirmed misbehavior iteration.
func monitorRobot(robot int, scenario roboads.Scenario, events chan<- alarmEvent) error {
	// Each robot crosses the shelf rows to its own goal bay.
	mission := roboads.Mission{
		Map:          roboads.WarehouseArena(),
		Start:        roboads.Point{X: 0.6, Y: 0.6 + 0.3*float64(robot%3)},
		StartHeading: 0.4,
		Goal:         roboads.Point{X: 7.2, Y: 5.2},
	}
	system, err := roboads.NewKheperaSystemWithMission(mission, scenario, int64(100+robot))
	if err != nil {
		return err
	}
	for steps := 0; steps < 2500; steps++ {
		rec, report, err := system.Step()
		if errors.Is(err, roboads.ErrMissionOver) {
			return nil
		}
		if err != nil {
			return err
		}
		confirmedSensor := report.Decision.SensorAlarm && !report.Decision.Condition.Clean()
		if confirmedSensor || report.Decision.ActuatorAlarm {
			events <- alarmEvent{
				robot:     robot,
				timeSec:   float64(rec.K) * system.Dt(),
				condition: report.Decision.Condition.String(),
			}
		}
		if rec.Done {
			return nil
		}
	}
	return nil
}
