// Quickstart: run a Khepera mission under an IPS spoofing attack and
// watch RoboADS detect, identify, and quantify the misbehavior.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"roboads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Table II scenario #4: a fake IPS base station overpowers the
	// authentic signal 6 s into the mission and shifts the reported
	// position by −0.1 m on the X axis.
	scenario := roboads.IPSSpoofingScenario()
	fmt.Printf("scenario: %v\n  %s\n\n", &scenario, scenario.Description)

	system, err := roboads.NewKheperaSystem(scenario, 1)
	if err != nil {
		return err
	}

	firstDetection := -1.0
	lastCondition := ""
	for {
		rec, report, err := system.Step()
		if errors.Is(err, roboads.ErrMissionOver) {
			break
		}
		if err != nil {
			return err
		}

		t := float64(rec.K) * system.Dt()
		condition := report.Decision.Condition.String()
		if condition != lastCondition {
			fmt.Printf("t=%5.1fs  condition %-12s (selected hypothesis: %s)\n",
				t, condition, report.Decision.Mode)
			lastCondition = condition
		}
		if firstDetection < 0 && report.Decision.SensorAlarm && !report.Decision.Condition.Clean() {
			firstDetection = t
			// Quantification (§V-C): the anomaly vector estimate recovers
			// the injected corruption for forensics.
			for _, sa := range report.Decision.SensorAnomalies {
				if sa.Sensor == "ips" {
					fmt.Printf("         quantified IPS anomaly: d̂s = %v m (injected: -0.1 on x)\n", sa.Ds)
				}
			}
		}
		if rec.Done {
			break
		}
	}

	if firstDetection < 0 {
		return errors.New("attack was never detected")
	}
	fmt.Printf("\nfirst confirmed detection at t=%.1fs (attack onset t=6.0s)\n", firstDetection)
	return nil
}
