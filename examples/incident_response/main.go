// Incident response (§VII future work): detect an IPS spoofing attack,
// build a forensic incident record (onset, magnitude, corruption shape),
// quarantine the corrupted sensor, and continue the mission on the
// remaining clean sensors.
//
//	go run ./examples/incident_response
package main

import (
	"errors"
	"fmt"
	"log"

	"roboads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scenario := roboads.IPSSpoofingScenario()
	fmt.Printf("scenario: %v\n  %s\n\n", &scenario, scenario.Description)

	// Assemble the detector from components so we hold the pieces the
	// responder needs to rebuild it.
	model := roboads.NewKheperaModel(0.1)
	arena := roboads.LabArena()
	suite := []roboads.Sensor{
		roboads.NewIPS(3),
		roboads.NewWheelEncoder(3),
		roboads.NewLidar(arena, 3),
	}
	mission := roboads.LabMission()
	x0 := roboads.NewVec(mission.Start.X, mission.Start.Y, mission.StartHeading)
	u0 := model.WheelSpeeds(0.1, 0)
	plant := roboads.Plant{
		Model:       model,
		Q:           roboads.Diag(2.5e-7, 2.5e-7, 1e-6),
		AngleStates: []int{2},
		UMax:        roboads.NewVec(0.8, 0.8),
	}
	modes, err := roboads.SingleReferenceModes(model, suite, x0, u0, false)
	if err != nil {
		return err
	}
	engine, err := roboads.NewEngine(plant, modes, x0, roboads.Diag(1e-6, 1e-6, 1e-6),
		roboads.DefaultEngineConfig())
	if err != nil {
		return err
	}
	detector := roboads.NewDetector(engine, roboads.DefaultDetectorConfig())

	analyzer := roboads.NewIncidentAnalyzer()
	responder := roboads.NewResponder(plant, suite, x0, u0,
		roboads.DefaultEngineConfig(), roboads.DefaultDetectorConfig())

	// The simulated robot supplies monitor inputs through the System
	// runner; we drive our own detector so the responder can swap it.
	system, err := roboads.NewKheperaSystem(scenario, 1)
	if err != nil {
		return err
	}

	quarantined := false
	for {
		rec, _, err := system.Step()
		if errors.Is(err, roboads.ErrMissionOver) {
			break
		}
		if err != nil {
			return err
		}
		report, err := detector.Step(rec.UPlanned, rec.Readings)
		if err != nil {
			return err
		}
		analyzer.Observe(report.Decision)

		if !quarantined {
			if names := responder.ShouldQuarantine(analyzer); len(names) > 0 {
				x, px := detector.State()
				detector, err = responder.Quarantine(names, x, px)
				if err != nil {
					return err
				}
				quarantined = true
				fmt.Printf("t=%.1fs: quarantined %v; detector rebuilt on clean suite\n",
					float64(rec.K)*system.Dt(), names)
			}
		}
		if rec.Done {
			fmt.Printf("t=%.1fs: mission completed despite the attack\n", float64(rec.K)*system.Dt())
			break
		}
	}

	fmt.Println("\nincident report:")
	fmt.Println(analyzer.Report(system.Dt()))
	if !quarantined {
		return errors.New("attack never confirmed persistently enough to quarantine")
	}
	return nil
}
