// Monitoring (DESIGN.md §9): wire the telemetry layer into a detection
// loop you assemble yourself. The telemetry hub observes both the
// multi-mode engine and the decision maker, streams sampled structured
// logs to stderr, and serves Prometheus metrics, pprof, and a JSON
// state snapshot over HTTP while the mission runs.
//
//	go run ./examples/monitoring
//	curl -s localhost:8080/metrics | grep roboads_
//	curl -s localhost:8080/snapshot
package main

import (
	"errors"
	"fmt"
	"log"
	"log/slog"
	"os"

	"roboads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One telemetry hub serves the whole detector. Events log at Info
	// and above; the per-step Debug firehose is thinned to every 25th
	// record so it stays readable if you lower the handler level.
	tel := roboads.NewTelemetry(roboads.TelemetryOptions{
		Logger: slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelInfo})),
		SampleEvery: map[slog.Level]int{slog.LevelDebug: 25},
	})
	srv, addr, err := tel.Serve("127.0.0.1:8080")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("telemetry on http://%v  (/metrics /snapshot /debug/pprof/)\n\n", addr)

	// Assemble the detector from components — exactly the quickstart
	// stack, plus the Observer fields that switch instrumentation on.
	model := roboads.NewKheperaModel(0.1)
	arena := roboads.LabArena()
	suite := []roboads.Sensor{
		roboads.NewIPS(3),
		roboads.NewWheelEncoder(3),
		roboads.NewLidar(arena, 3),
	}
	mission := roboads.LabMission()
	x0 := roboads.NewVec(mission.Start.X, mission.Start.Y, mission.StartHeading)
	u0 := model.WheelSpeeds(0.1, 0)
	plant := roboads.Plant{
		Model:       model,
		Q:           roboads.Diag(2.5e-7, 2.5e-7, 1e-6),
		AngleStates: []int{2},
		UMax:        roboads.NewVec(0.8, 0.8),
	}
	modes, err := roboads.SingleReferenceModes(model, suite, x0, u0, false)
	if err != nil {
		return err
	}
	ecfg := roboads.DefaultEngineConfig()
	ecfg.Observer = tel
	engine, err := roboads.NewEngine(plant, modes, x0,
		roboads.Diag(1e-6, 1e-6, 1e-6), ecfg)
	if err != nil {
		return err
	}
	dcfg := roboads.DefaultDetectorConfig()
	dcfg.Observer = tel
	detector := roboads.NewDetector(engine, dcfg)

	// Drive it with monitor inputs from a simulated IPS-spoofing
	// mission; your robot would supply planned commands and readings
	// from its own control loop instead.
	system, err := roboads.NewKheperaSystem(roboads.IPSSpoofingScenario(), 1)
	if err != nil {
		return err
	}
	for {
		rec, _, err := system.Step()
		if errors.Is(err, roboads.ErrMissionOver) {
			break
		}
		if err != nil {
			return err
		}
		if _, err := detector.Step(rec.UPlanned, rec.Readings); err != nil {
			return err
		}
		if rec.Done {
			break
		}
	}

	// Everything the HTTP surface serves is also available in-process.
	snap := tel.Snapshot()
	fmt.Printf("\nmission over after %d iterations; final mode %q\n",
		snap.Iteration, snap.SelectedMode)
	reg := tel.Registry()
	fmt.Printf("mode switches: %d, alarm transitions logged above\n",
		reg.CounterValue(roboads.MetricModeSwitches))
	return nil
}
