// GPS spoofing on a custom robot: assemble a RoboADS detector from
// components for a differential-drive robot carrying GPS + magnetometer
// + wheel-encoder sensors, then detect a GPS spoofing attack.
//
// This example exercises the §VI sensor-grouping rule: a magnetometer
// alone cannot reconstruct the robot state (position is unobservable),
// so it is grouped with the wheel encoder to form a valid reference.
//
//	go run ./examples/gps_spoofing
package main

import (
	"fmt"
	"log"
	"math"

	"roboads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const dt = 0.1
	model := roboads.NewKheperaModel(dt)

	// Sensor suite: a coarse GPS, a magnetometer, and wheel-encoder
	// odometry.
	gps := roboads.NewGPS(3, 0.01)
	magnetometer := roboads.NewMagnetometer(3)
	encoder := roboads.NewWheelEncoder(3)

	x0 := roboads.NewVec(2, 2, 0)
	u0 := model.WheelSpeeds(0.1, 0)

	// The §VI observability check rejects the magnetometer as a lone
	// reference:
	fmt.Printf("magnetometer alone observable? %v\n",
		roboads.Observable(model, magnetometer, x0, u0))

	// Build the hypothesis set by hand: GPS alone is a valid reference;
	// the magnetometer must be grouped (here with the encoder).
	modeGPS, err := roboads.NewMode([]roboads.Sensor{gps}, []roboads.Sensor{magnetometer, encoder})
	if err != nil {
		return err
	}
	modeGrouped, err := roboads.NewMode([]roboads.Sensor{magnetometer, encoder}, []roboads.Sensor{gps})
	if err != nil {
		return err
	}

	plant := roboads.Plant{
		Model:       model,
		Q:           roboads.Diag(2.5e-7, 2.5e-7, 1e-6),
		AngleStates: []int{2},
		UMax:        roboads.NewVec(0.8, 0.8),
	}
	engine, err := roboads.NewEngine(plant, []*roboads.Mode{modeGPS, modeGrouped},
		x0, roboads.Diag(1e-6, 1e-6, 1e-6), roboads.DefaultEngineConfig())
	if err != nil {
		return err
	}
	detector := roboads.NewDetector(engine, roboads.DefaultDetectorConfig())

	// Drive the robot in a gentle arc; spoof the GPS from t=5s by +0.5 m
	// north.
	rng := roboads.NewRNG(7)
	xTrue := x0.Clone()
	u := model.WheelSpeeds(0.15, 0.1)
	spoof := roboads.NewVec(0, 0.5)

	detectedAt := -1.0
	for k := 0; k < 150; k++ {
		xTrue = model.F(xTrue, u).Add(rng.GaussianVec(roboads.NewVec(5e-4, 5e-4, 1e-3)))

		readings := map[string]roboads.Vec{
			gps.Name():          noisy(rng, gps, xTrue),
			magnetometer.Name(): noisy(rng, magnetometer, xTrue),
			encoder.Name():      noisy(rng, encoder, xTrue),
		}
		if k >= 50 {
			readings[gps.Name()] = readings[gps.Name()].Add(spoof)
		}

		report, err := detector.Step(u, readings)
		if err != nil {
			return err
		}
		if detectedAt < 0 && report.Decision.SensorAlarm {
			for _, s := range report.Decision.Condition.Sensors {
				if s == gps.Name() {
					detectedAt = float64(k) * dt
					fmt.Printf("t=%.1fs: GPS misbehavior confirmed (%v), spoofing began at t=5.0s\n",
						detectedAt, report.Decision.Condition)
				}
			}
		}
	}
	if detectedAt < 0 {
		return fmt.Errorf("spoofing went undetected")
	}
	fmt.Printf("detection delay: %.1fs\n", detectedAt-5.0)
	return nil
}

// noisy samples a reading with the sensor's own noise model.
func noisy(rng *roboads.RNG, s roboads.Sensor, x roboads.Vec) roboads.Vec {
	r := s.R()
	stds := make(roboads.Vec, s.Dim())
	for i := range stds {
		stds[i] = math.Sqrt(r.At(i, i))
	}
	return s.H(x).Add(rng.GaussianVec(stds))
}
