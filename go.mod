module roboads

go 1.22
