package roboads_test

import (
	"errors"
	"testing"

	"roboads"
)

func TestQuickstartFlow(t *testing.T) {
	system, err := roboads.NewKheperaSystem(roboads.IPSSpoofingScenario(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if system.Dt() != 0.1 {
		t.Fatalf("dt = %v", system.Dt())
	}

	sawAlarm := false
	steps := 0
	for {
		rec, report, err := system.Step()
		if errors.Is(err, roboads.ErrMissionOver) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 2000 {
			break
		}
		if report.Decision.SensorAlarm {
			for _, s := range report.Decision.Condition.Sensors {
				if s == "ips" && rec.Truth.CorruptedSensors["ips"] {
					sawAlarm = true
				}
			}
		}
		if rec.Done {
			break
		}
	}
	if !sawAlarm {
		t.Fatal("IPS spoofing never detected through the public API")
	}
	x, px := system.State()
	if x.Len() != 3 || px.Rows() != 3 {
		t.Fatalf("state dims: %d / %dx%d", x.Len(), px.Rows(), px.Cols())
	}
}

func TestTamiyaSystemFlow(t *testing.T) {
	scenarios := roboads.TamiyaScenarios()
	system, err := roboads.NewTamiyaSystem(scenarios[2], 3) // IPS spoofing
	if err != nil {
		t.Fatal(err)
	}
	detections := 0
	for i := 0; i < 400; i++ {
		_, report, err := system.Step()
		if errors.Is(err, roboads.ErrMissionOver) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if report.Decision.SensorAlarm {
			detections++
		}
	}
	if detections == 0 {
		t.Fatal("Tamiya IPS spoofing never detected")
	}
}

func TestCustomDetectorAssembly(t *testing.T) {
	// Assemble a detector from components only — the path a downstream
	// robot integration takes (no simulator involved).
	model := roboads.NewKheperaModel(0.1)
	arena := roboads.LabArena()
	suite := []roboads.Sensor{
		roboads.NewIPS(3),
		roboads.NewWheelEncoder(3),
		roboads.NewLidar(arena, 3),
	}
	x0 := roboads.Vec{1, 1, 0}
	u0 := model.WheelSpeeds(0.1, 0)
	modes, err := roboads.SingleReferenceModes(model, suite, x0, u0, false)
	if err != nil {
		t.Fatal(err)
	}
	plant := roboads.Plant{
		Model:       model,
		Q:           roboads.Diag(2.5e-7, 2.5e-7, 1e-6),
		AngleStates: []int{2},
	}
	engine, err := roboads.NewEngine(plant, modes, x0, roboads.Diag(1e-6, 1e-6, 1e-6), roboads.DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	det := roboads.NewDetector(engine, roboads.DefaultDetectorConfig())

	// Feed a few clean iterations.
	rng := roboads.NewRNG(4)
	xTrue := x0.Clone()
	u := model.WheelSpeeds(0.12, 0.1)
	for k := 0; k < 30; k++ {
		xTrue = model.F(xTrue, u).Add(rng.GaussianVec(roboads.Vec{5e-4, 5e-4, 1e-3}))
		readings := map[string]roboads.Vec{}
		for _, s := range suite {
			readings[s.Name()] = s.H(xTrue)
		}
		report, err := det.Step(u, readings)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(report.Decision.Condition.Sensors) > 0 {
			t.Fatalf("k=%d: clean run confirmed %v", k, report.Decision.Condition)
		}
	}
}

func TestRunScenarioAndMetrics(t *testing.T) {
	run, err := roboads.RunScenario(roboads.KheperaScenarios()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	conf := run.ActuatorConfusion()
	if conf.TPR() < 0.9 {
		t.Fatalf("actuator TPR = %.2f for scenario #1", conf.TPR())
	}
}

func TestObservabilityExport(t *testing.T) {
	model := roboads.NewKheperaModel(0.1)
	mag := roboads.NewMagnetometer(3)
	if roboads.Observable(model, mag, roboads.Vec{0, 0, 0}, roboads.Vec{0.1, 0.1}) {
		t.Fatal("magnetometer should not be observable alone")
	}
}
