package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roboads/internal/benchserve"
)

func serveRecord(label string, fps, p99 float64) *benchserve.Record {
	return &benchserve.Record{
		Label:      label,
		RecordedAt: "2026-08-08T00:00:00Z",
		Config:     benchserve.Config{Sessions: 8, Batch: 4, Wire: "binary", Robot: "khepera", DurationSeconds: 10},
		Env:        benchserve.Env{NumCPU: 1},
		Results: benchserve.Results{
			FramesPerSecond: fps,
			StepLatencyMs:   benchserve.LatencyMs{P50: 10, P99: p99},
		},
	}
}

func TestServeBaselinePicksSameShape(t *testing.T) {
	other := serveRecord("", 500, 30)
	other.Config.Sessions = 64 // different shape: never a baseline
	older := serveRecord("", 900, 31)
	newer := serveRecord("", 1000, 30)
	cur := serveRecord("", 1100, 29)
	f := &benchserve.File{Version: 1, Records: []*benchserve.Record{older, other, newer, cur}}

	gotCur, gotBase := serveBaseline(f)
	if gotCur != cur {
		t.Fatalf("current = %+v, want newest record", gotCur)
	}
	if gotBase != newer {
		t.Fatalf("baseline = %+v, want most recent same-shape record", gotBase)
	}

	// Different NumCPU never qualifies either.
	cur8 := serveRecord("", 1100, 29)
	cur8.Env.NumCPU = 8
	f = &benchserve.File{Records: []*benchserve.Record{newer, cur8}}
	if _, base := serveBaseline(f); base != nil {
		t.Fatalf("cross-numcpu baseline accepted: %+v", base)
	}

	// A lone record has no baseline.
	f = &benchserve.File{Records: []*benchserve.Record{cur}}
	if c, base := serveBaseline(f); c != cur || base != nil {
		t.Fatalf("lone record: current=%v baseline=%v", c, base)
	}
}

func TestCompareServe(t *testing.T) {
	base := serveRecord("", 1000, 30)
	byName := func(diffs []serveDiff) map[string]serveDiff {
		m := make(map[string]serveDiff)
		for _, d := range diffs {
			m[d.Name] = d
		}
		return m
	}

	// Within threshold both ways: passes.
	d := byName(compareServe(serveRecord("", 950, 32), base, 0.15))
	if d["framesPerSecond"].Regressed || d["stepLatencyMs.p99"].Regressed {
		t.Fatalf("in-threshold run flagged: %+v", d)
	}

	// Throughput collapse fails.
	d = byName(compareServe(serveRecord("", 700, 30), base, 0.15))
	if !d["framesPerSecond"].Regressed {
		t.Fatalf("-30%% throughput not flagged: %+v", d)
	}

	// p99 blowup fails.
	d = byName(compareServe(serveRecord("", 1000, 60), base, 0.15))
	if !d["stepLatencyMs.p99"].Regressed {
		t.Fatalf("2x p99 not flagged: %+v", d)
	}

	// p50 is informational only.
	worse := serveRecord("", 1000, 30)
	worse.Results.StepLatencyMs.P50 = 100
	for _, diff := range compareServe(worse, base, 0.15) {
		if diff.Regressed {
			t.Fatalf("informational metric failed the gate: %+v", diff)
		}
	}
}

func TestRunServe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")

	// First record of a shape: informational pass.
	if err := benchserve.Append(path, serveRecord("smoke", 1000, 30)); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runServe(path, 0.15, &out); err != nil {
		t.Fatalf("no-baseline run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "nothing to gate") {
		t.Fatalf("no-baseline run not announced:\n%s", out.String())
	}

	// A healthy follow-up passes.
	if err := benchserve.Append(path, serveRecord("smoke", 1020, 29)); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runServe(path, 0.15, &out); err != nil {
		t.Fatalf("healthy follow-up failed: %v\n%s", err, out.String())
	}

	// A collapsed follow-up fails.
	if err := benchserve.Append(path, serveRecord("smoke", 500, 29)); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runServe(path, 0.15, &out); err == nil {
		t.Fatalf("-50%% throughput passed the gate:\n%s", out.String())
	}

	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
