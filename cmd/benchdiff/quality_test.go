package main

import (
	"strings"
	"testing"

	"roboads/internal/benchquality"
)

// qualityRecord builds a two-scenario record whose metrics the tests
// perturb to inject regressions.
func qualityRecord(label string) *benchquality.Record {
	return &benchquality.Record{
		Label:      label,
		RecordedAt: "2026-08-08T00:00:00Z",
		Config: benchquality.Config{
			Suite: "default", SuiteHash: "9aff2fa76b7cdb3f", Seed: 42, Trials: 1, Scenarios: 2,
		},
		Env: benchquality.Env{Go: "go1.22", OS: "linux", Arch: "amd64", NumCPU: 1},
		Results: benchquality.Results{
			Scenarios: []benchquality.ScenarioRow{
				{
					Name: "clean", Robot: "khepera", Trials: 1,
					SensorFPR: 0.01, ActuatorFPR: 0.0, MeanDelaySec: -1,
				},
				{
					Name: "ips-bias", Class: "table2", Robot: "khepera", Trials: 1,
					SensorFPR: 0.02, ActuatorFPR: 0.01, MeanDelaySec: 0.8,
					DelaySec: map[string]float64{"ips": 0.8}, Missed: 0,
				},
			},
			AvgSensorFPR: 0.015, AvgActuatorFPR: 0.005, AvgDelaySec: 0.8,
		},
	}
}

func TestQualityBaselinePicksSameShape(t *testing.T) {
	otherSuite := qualityRecord("")
	otherSuite.Config.SuiteHash = "deadbeefdeadbeef" // edited DSL: never a baseline
	otherLabel := qualityRecord("nightly")
	older := qualityRecord("")
	newer := qualityRecord("")
	cur := qualityRecord("")
	f := &benchquality.File{Version: 1, Records: []*benchquality.Record{older, otherSuite, otherLabel, newer, cur}}

	gotCur, gotBase := qualityBaseline(f)
	if gotCur != cur {
		t.Fatalf("current = %+v, want newest record", gotCur)
	}
	if gotBase != newer {
		t.Fatalf("baseline = %+v, want most recent same-shape record", gotBase)
	}

	// A lone record has no baseline.
	f = &benchquality.File{Records: []*benchquality.Record{cur}}
	if c, base := qualityBaseline(f); c != cur || base != nil {
		t.Fatalf("lone record: current=%v baseline=%v", c, base)
	}
}

// regressedNames collects the failing diff names.
func regressedNames(diffs []qualityDiff) []string {
	var out []string
	for _, d := range diffs {
		if d.Regressed {
			out = append(out, d.Name)
		}
	}
	return out
}

func TestCompareQualityInjectedRegressions(t *testing.T) {
	base := qualityRecord("")

	// Identical record: nothing regresses.
	if got := regressedNames(compareQuality(qualityRecord(""), base, 0.15)); len(got) != 0 {
		t.Fatalf("identical record flagged: %v", got)
	}

	// Detection delay beyond threshold + slack fails.
	slow := qualityRecord("")
	slow.Results.Scenarios[1].MeanDelaySec = 1.5
	got := regressedNames(compareQuality(slow, base, 0.15))
	if len(got) != 1 || got[0] != "ips-bias.meanDelaySec" {
		t.Fatalf("2x delay: regressed = %v, want [ips-bias.meanDelaySec]", got)
	}

	// Delay within threshold + slack passes.
	okDelay := qualityRecord("")
	okDelay.Results.Scenarios[1].MeanDelaySec = 0.95 // 0.8*1.15 + 0.1 = 1.02
	if got := regressedNames(compareQuality(okDelay, base, 0.15)); len(got) != 0 {
		t.Fatalf("in-threshold delay flagged: %v", got)
	}

	// A detection that disappears (delay ≥ 0 → −1) fails even though
	// −1 < baseline numerically.
	lost := qualityRecord("")
	lost.Results.Scenarios[1].MeanDelaySec = -1
	lost.Results.Scenarios[1].Missed = 1
	got = regressedNames(compareQuality(lost, base, 0.15))
	want := map[string]bool{"ips-bias.meanDelaySec": true, "ips-bias.missed": true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Fatalf("lost detection: regressed = %v, want delay+missed", got)
	}

	// Sensor FPR growth beyond threshold + slack fails.
	noisy := qualityRecord("")
	noisy.Results.Scenarios[0].SensorFPR = 0.05
	got = regressedNames(compareQuality(noisy, base, 0.15))
	if len(got) != 1 || got[0] != "clean.sensorFPR" {
		t.Fatalf("5x FPR: regressed = %v, want [clean.sensorFPR]", got)
	}

	// FPR growth inside the absolute slack passes (0 → 0.001 on a
	// zero baseline would otherwise be an infinite relative jump).
	tiny := qualityRecord("")
	tiny.Results.Scenarios[0].ActuatorFPR = 0.001
	if got := regressedNames(compareQuality(tiny, base, 0.15)); len(got) != 0 {
		t.Fatalf("sub-slack FPR flagged: %v", got)
	}

	// An undetected-in-baseline scenario (delay −1, e.g. the stealthy
	// watermark rows) may stay undetected without failing.
	if got := regressedNames(compareQuality(qualityRecord(""), base, 0.15)); len(got) != 0 {
		t.Fatalf("stealthy miss flagged: %v", got)
	}

	// Aggregates are informational: worsen them all, gate still passes.
	agg := qualityRecord("")
	agg.Results.AvgSensorFPR = 0.9
	agg.Results.AvgDelaySec = 99
	agg.Results.Missed = 50
	if got := regressedNames(compareQuality(agg, base, 0.15)); len(got) != 0 {
		t.Fatalf("informational aggregate failed the gate: %v", got)
	}
}

func TestRunQuality(t *testing.T) {
	path := t.TempDir() + "/BENCH_quality.json"

	// First record of a shape: informational pass.
	if err := benchquality.Append(path, qualityRecord("smoke")); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runQuality(path, 0.15, &out); err != nil {
		t.Fatalf("no-baseline run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "nothing to gate") {
		t.Fatalf("no-baseline run not announced:\n%s", out.String())
	}

	// An identical follow-up passes.
	if err := benchquality.Append(path, qualityRecord("smoke")); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runQuality(path, 0.15, &out); err != nil {
		t.Fatalf("identical follow-up failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "quality holds") {
		t.Fatalf("verdict missing:\n%s", out.String())
	}

	// A follow-up with a missed detection fails.
	bad := qualityRecord("smoke")
	bad.Results.Scenarios[1].MeanDelaySec = -1
	bad.Results.Scenarios[1].Missed = 1
	if err := benchquality.Append(path, bad); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runQuality(path, 0.15, &out); err == nil {
		t.Fatalf("missed detection passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("failure rows missing:\n%s", out.String())
	}
}
