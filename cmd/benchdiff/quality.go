package main

import (
	"fmt"
	"io"

	"roboads/internal/benchquality"
)

// Detection-quality gate slack. Suite execution is deterministic from
// {seed, DSL}, but the relative threshold alone would flag microscopic
// rate shifts on near-zero baselines; the absolute terms keep the gate
// about regressions a person would care about.
const (
	// qualityDelaySlackSec is added on top of the relative threshold
	// when gating per-scenario mean detection delay.
	qualityDelaySlackSec = 0.1
	// qualityRateSlack is the absolute FPR slack (0.2 percentage
	// points) on top of the relative threshold.
	qualityRateSlack = 0.002
)

// qualityBaseline picks the comparison baseline for the newest record:
// the most recent earlier record with the same label and the same
// workload identity (Config is comparable and includes the suite hash,
// so an edited DSL or different seed/trials never diffs against the old
// suite). Env is deliberately ignored — detection quality is
// deterministic, so any machine's record is a valid baseline.
func qualityBaseline(f *benchquality.File) (current, baseline *benchquality.Record) {
	if len(f.Records) == 0 {
		return nil, nil
	}
	cur := f.Records[len(f.Records)-1]
	for i := len(f.Records) - 2; i >= 0; i-- {
		r := f.Records[i]
		if r.Label == cur.Label && r.Config == cur.Config {
			return cur, r
		}
	}
	return cur, nil
}

// qualityDiff is one gated comparison outcome (a per-scenario metric or
// a suite aggregate).
type qualityDiff struct {
	Name              string
	Baseline, Current float64
	// Regressed means the metric moved in its bad direction beyond the
	// threshold (+ absolute slack): delay or FPR up, a detection lost.
	Regressed bool
	// Info marks rows that are printed but never fail (aggregates, FNR).
	Info bool
}

// compareQuality gates the newest record against its baseline,
// per scenario row (matched by name):
//
//   - Missed may not grow: a (target, trial) detection that existed in
//     the baseline must still exist.
//   - MeanDelaySec may not rise beyond threshold (+0.1 s absolute), and
//     a detected scenario (delay ≥ 0) may not become undetected.
//   - Sensor and actuator FPR may not rise beyond threshold (+0.002
//     absolute).
//
// Suite aggregates and FNRs ride along informationally. Rows present
// only on one side are reported as info — the suite hash already pins
// the scenario set, so that can only happen across format versions.
func compareQuality(cur, base *benchquality.Record, threshold float64) []qualityDiff {
	baseRows := make(map[string]benchquality.ScenarioRow, len(base.Results.Scenarios))
	for _, row := range base.Results.Scenarios {
		baseRows[row.Name] = row
	}
	var diffs []qualityDiff
	for _, row := range cur.Results.Scenarios {
		b, ok := baseRows[row.Name]
		if !ok {
			diffs = append(diffs, qualityDiff{Name: row.Name + ".new-row", Current: 1, Info: true})
			continue
		}
		diffs = append(diffs,
			qualityDiff{
				Name:     row.Name + ".missed",
				Baseline: float64(b.Missed), Current: float64(row.Missed),
				Regressed: row.Missed > b.Missed,
			},
			qualityDiff{
				Name:     row.Name + ".meanDelaySec",
				Baseline: b.MeanDelaySec, Current: row.MeanDelaySec,
				Regressed: b.MeanDelaySec >= 0 &&
					(row.MeanDelaySec < 0 ||
						row.MeanDelaySec > b.MeanDelaySec*(1+threshold)+qualityDelaySlackSec),
			},
			qualityDiff{
				Name:     row.Name + ".sensorFPR",
				Baseline: b.SensorFPR, Current: row.SensorFPR,
				Regressed: row.SensorFPR > b.SensorFPR*(1+threshold)+qualityRateSlack,
			},
			qualityDiff{
				Name:     row.Name + ".actuatorFPR",
				Baseline: b.ActuatorFPR, Current: row.ActuatorFPR,
				Regressed: row.ActuatorFPR > b.ActuatorFPR*(1+threshold)+qualityRateSlack,
			},
		)
	}
	diffs = append(diffs,
		qualityDiff{Name: "suite.avgSensorFPR", Baseline: base.Results.AvgSensorFPR, Current: cur.Results.AvgSensorFPR, Info: true},
		qualityDiff{Name: "suite.avgSensorFNR", Baseline: base.Results.AvgSensorFNR, Current: cur.Results.AvgSensorFNR, Info: true},
		qualityDiff{Name: "suite.avgActuatorFPR", Baseline: base.Results.AvgActuatorFPR, Current: cur.Results.AvgActuatorFPR, Info: true},
		qualityDiff{Name: "suite.avgDelaySec", Baseline: base.Results.AvgDelaySec, Current: cur.Results.AvgDelaySec, Info: true},
		qualityDiff{Name: "suite.missed", Baseline: float64(base.Results.Missed), Current: float64(cur.Results.Missed), Info: true},
	)
	return diffs
}

// runQuality is the -quality entry point: load the leaderboard, gate
// its newest record against the matching baseline, exit nonzero on a
// detection-quality regression. A record with no baseline passes
// informationally — the next run of the same shape will have one.
func runQuality(path string, threshold float64, w io.Writer) error {
	f, err := benchquality.Load(path)
	if err != nil {
		return err
	}
	cur, base := qualityBaseline(f)
	if cur == nil {
		return fmt.Errorf("benchdiff: %s has no records", path)
	}
	fmt.Fprintf(w, "quality record: %s label=%q suite=%q hash=%s seed=%d trials=%d scenarios=%d\n",
		cur.RecordedAt, cur.Label, cur.Config.Suite, cur.Config.SuiteHash,
		cur.Config.Seed, cur.Config.Trials, cur.Config.Scenarios)
	if base == nil {
		fmt.Fprintf(w, "ok    no earlier record with this label+config; nothing to gate\n")
		return nil
	}
	fmt.Fprintf(w, "baseline: %s\n", base.RecordedAt)
	failed := false
	for _, d := range compareQuality(cur, base, threshold) {
		status := "ok   "
		switch {
		case d.Regressed:
			status = "FAIL "
			failed = true
		case d.Info:
			status = "info "
		default:
			// Unchanged gated rows stay quiet; only print movement so a
			// 26-scenario suite doesn't drown the verdict.
			if d.Baseline == d.Current {
				continue
			}
		}
		fmt.Fprintf(w, "%s %-45s %10.4f -> %10.4f\n", status, d.Name, d.Baseline, d.Current)
	}
	if failed {
		return fmt.Errorf("benchdiff: detection-quality regression beyond %.0f%% (+slack)", 100*threshold)
	}
	fmt.Fprintf(w, "ok    detection quality holds against baseline\n")
	return nil
}
