package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: roboads
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNUISEStep 	    1500	     17398 ns/op	   12336 B/op	     198 allocs/op
BenchmarkNUISEStepScratch-8 	    1500	      6583.5 ns/op	    3016 B/op	      45 allocs/op
BenchmarkEngineStepParallel/modes=3/workers=2 	    1500	     54115 ns/op
PASS
ok  	roboads	1.2s
`
	got, err := parseBenchOutput(strings.NewReader(out), false)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]benchSample{
		"BenchmarkNUISEStep":                            {NsPerOp: 17398, Allocs: 198, HasAllocs: true},
		"BenchmarkNUISEStepScratch":                     {NsPerOp: 6583.5, Allocs: 45, HasAllocs: true},
		"BenchmarkEngineStepParallel/modes=3/workers=2": {NsPerOp: 54115},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, s := range want {
		if got[name] != s {
			t.Errorf("%s = %+v, want %+v", name, got[name], s)
		}
	}
}

func TestParseBenchOutputRepeatedRunsKeepLast(t *testing.T) {
	out := "BenchmarkX \t 100 \t 200 ns/op\nBenchmarkX \t 100 \t 300 ns/op\n"
	got, err := parseBenchOutput(strings.NewReader(out), false)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"].NsPerOp != 300 {
		t.Errorf("BenchmarkX = %v, want last run 300", got["BenchmarkX"].NsPerOp)
	}
}

func TestCompare(t *testing.T) {
	baseline := map[string]benchEntry{
		"BenchmarkFast":    {NsPerOp: 1000},
		"BenchmarkSlow":    {NsPerOp: 1000},
		"BenchmarkEdge":    {NsPerOp: 1000},
		"BenchmarkMissing": {NsPerOp: 1000},
	}
	current := map[string]benchSample{
		"BenchmarkFast":  {NsPerOp: 900},
		"BenchmarkSlow":  {NsPerOp: 1200},
		"BenchmarkEdge":  {NsPerOp: 1150}, // exactly at the limit: not a regression
		"BenchmarkExtra": {NsPerOp: 50},   // untracked benchmarks are ignored
	}
	results := compare(baseline, current, 0.15, false)
	if len(results) != 4 {
		t.Fatalf("%d results, want 4", len(results))
	}
	byName := make(map[string]diffResult)
	for _, r := range results {
		byName[r.Name] = r
	}
	if r := byName["BenchmarkFast"]; r.Regressed || r.Missing {
		t.Errorf("BenchmarkFast flagged: %+v", r)
	}
	if r := byName["BenchmarkSlow"]; !r.Regressed {
		t.Errorf("BenchmarkSlow not flagged: %+v", r)
	}
	if r := byName["BenchmarkEdge"]; r.Regressed {
		t.Errorf("BenchmarkEdge at the threshold should pass: %+v", r)
	}
	if r := byName["BenchmarkMissing"]; !r.Missing || r.Regressed {
		t.Errorf("BenchmarkMissing should warn, not fail: %+v", r)
	}
	// Sorted by name for stable output.
	for i := 1; i < len(results); i++ {
		if results[i-1].Name > results[i].Name {
			t.Fatalf("results unsorted: %v before %v", results[i-1].Name, results[i].Name)
		}
	}
}

func TestFilterBaseline(t *testing.T) {
	mk := func() map[string]benchEntry {
		return map[string]benchEntry{
			"BenchmarkEngineStep":          {NsPerOp: 100},
			"BenchmarkEngineStepTelemetry": {NsPerOp: 110},
			"BenchmarkNUISEStep":           {NsPerOp: 50},
		}
	}

	b := mk()
	if err := filterBaseline(b, ""); err != nil || len(b) != 3 {
		t.Fatalf("empty pattern: len=%d err=%v", len(b), err)
	}

	b = mk()
	if err := filterBaseline(b, `^BenchmarkEngineStep$`); err != nil {
		t.Fatal(err)
	}
	if len(b) != 1 {
		t.Fatalf("anchored filter kept %d entries: %v", len(b), b)
	}
	if _, ok := b["BenchmarkEngineStep"]; !ok {
		t.Fatalf("wrong survivor: %v", b)
	}

	b = mk()
	if err := filterBaseline(b, "NoSuchBenchmark"); err == nil {
		t.Fatal("no-match pattern accepted")
	}
	b = mk()
	if err := filterBaseline(b, "("); err == nil {
		t.Fatal("bad regex accepted")
	}
}

func TestParseBenchOutputBestKeepsFastest(t *testing.T) {
	out := "BenchmarkX \t 100 \t 200 ns/op\nBenchmarkX \t 100 \t 300 ns/op\nBenchmarkX \t 100 \t 250 ns/op\n"
	got, err := parseBenchOutput(strings.NewReader(out), true)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"].NsPerOp != 200 {
		t.Errorf("BenchmarkX = %v, want fastest run 200", got["BenchmarkX"].NsPerOp)
	}
}

func TestCompareAllocsGate(t *testing.T) {
	baseline := map[string]benchEntry{
		"BenchmarkStable":   {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkGrew":     {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkNoAllocs": {NsPerOp: 1000}, // pre-allocs baseline entry
		"BenchmarkSilent":   {NsPerOp: 1000, AllocsPerOp: 100},
	}
	current := map[string]benchSample{
		"BenchmarkStable":   {NsPerOp: 1000, Allocs: 100, HasAllocs: true},
		"BenchmarkGrew":     {NsPerOp: 1000, Allocs: 101, HasAllocs: true},
		"BenchmarkNoAllocs": {NsPerOp: 1000, Allocs: 9999, HasAllocs: true},
		"BenchmarkSilent":   {NsPerOp: 1000}, // output without allocs/op
	}
	byName := make(map[string]diffResult)
	for _, r := range compare(baseline, current, 0.15, true) {
		byName[r.Name] = r
	}
	if r := byName["BenchmarkStable"]; r.AllocRegressed || r.AllocsUnknown {
		t.Errorf("BenchmarkStable flagged: %+v", r)
	}
	if r := byName["BenchmarkGrew"]; !r.AllocRegressed {
		t.Errorf("BenchmarkGrew (+1 alloc) not flagged: %+v", r)
	}
	if r := byName["BenchmarkNoAllocs"]; r.AllocRegressed || r.AllocsUnknown {
		t.Errorf("baseline without allocs_per_op must not gate: %+v", r)
	}
	if r := byName["BenchmarkSilent"]; !r.AllocsUnknown || r.AllocRegressed {
		t.Errorf("output without allocs/op should warn, not fail: %+v", r)
	}

	// Gate off: nothing alloc-related fires.
	for _, r := range compare(baseline, current, 0.15, false) {
		if r.AllocRegressed || r.AllocsUnknown {
			t.Errorf("alloc gate fired with -allocs off: %+v", r)
		}
	}
}

func TestPrintEnvironment(t *testing.T) {
	var sb strings.Builder
	printEnvironment(&sb, baselineEnv{CPU: "Xeon @ 2.70GHz", NumCPU: 1, GOMAXPROCS: 1})
	got := sb.String()
	if !strings.Contains(got, "baseline: Xeon @ 2.70GHz, numcpu 1, gomaxprocs 1") {
		t.Fatalf("baseline line missing from:\n%s", got)
	}
	if !strings.Contains(got, "current:  numcpu ") {
		t.Fatalf("current-host line missing from:\n%s", got)
	}

	sb.Reset()
	printEnvironment(&sb, baselineEnv{})
	if !strings.Contains(sb.String(), "baseline: ?, numcpu ?, gomaxprocs ?") {
		t.Fatalf("pre-metadata baseline not rendered as unknowns:\n%s", sb.String())
	}
}
