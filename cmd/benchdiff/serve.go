package main

import (
	"fmt"
	"io"

	"roboads/internal/benchserve"
)

// serveBaseline picks the comparison baseline for the newest record in
// the trajectory: the most recent earlier record with the same label,
// the same load shape (Config is comparable by design), and the same
// CPU count — serving throughput on a 1-CPU recording container is not
// a baseline for an 8-core runner. Returns nil when no earlier record
// qualifies (first run of a new shape).
func serveBaseline(f *benchserve.File) (current, baseline *benchserve.Record) {
	if len(f.Records) == 0 {
		return nil, nil
	}
	cur := f.Records[len(f.Records)-1]
	for i := len(f.Records) - 2; i >= 0; i-- {
		r := f.Records[i]
		if r.Label == cur.Label && r.Config == cur.Config && r.Env.NumCPU == cur.Env.NumCPU {
			return cur, r
		}
	}
	return cur, nil
}

// serveDiff is one gated serving metric's comparison outcome.
type serveDiff struct {
	Name              string
	Baseline, Current float64
	// Regressed means the metric moved in its bad direction beyond the
	// threshold (throughput down, latency up).
	Regressed bool
}

// compareServe gates the newest record against its baseline:
// framesPerSecond may not drop, and step p99 may not rise, beyond the
// threshold fraction. p50 and recovery time ride along informationally
// (compared, never failing — both are too environment-sensitive for a
// hard gate at this threshold).
func compareServe(cur, base *benchserve.Record, threshold float64) []serveDiff {
	diffs := []serveDiff{
		{
			Name:     "framesPerSecond",
			Baseline: base.Results.FramesPerSecond,
			Current:  cur.Results.FramesPerSecond,
			Regressed: base.Results.FramesPerSecond > 0 &&
				cur.Results.FramesPerSecond < base.Results.FramesPerSecond*(1-threshold),
		},
		{
			Name:     "stepLatencyMs.p99",
			Baseline: base.Results.StepLatencyMs.P99,
			Current:  cur.Results.StepLatencyMs.P99,
			Regressed: base.Results.StepLatencyMs.P99 > 0 &&
				cur.Results.StepLatencyMs.P99 > base.Results.StepLatencyMs.P99*(1+threshold),
		},
		{Name: "stepLatencyMs.p50", Baseline: base.Results.StepLatencyMs.P50, Current: cur.Results.StepLatencyMs.P50},
	}
	if base.Results.RecoverySeconds > 0 || cur.Results.RecoverySeconds > 0 {
		diffs = append(diffs, serveDiff{Name: "recoverySeconds", Baseline: base.Results.RecoverySeconds, Current: cur.Results.RecoverySeconds})
	}
	return diffs
}

// runServe is the -serve entry point: load the trajectory, gate its
// newest record against the matching baseline, exit nonzero on
// regression. A record with no baseline passes informationally — the
// next run of the same shape will have one.
func runServe(path string, threshold float64, w io.Writer) error {
	f, err := benchserve.Load(path)
	if err != nil {
		return err
	}
	cur, base := serveBaseline(f)
	if cur == nil {
		return fmt.Errorf("benchdiff: %s has no records", path)
	}
	fmt.Fprintf(w, "serve record: %s label=%q sessions=%d batch=%d rate=%g crash=%v numcpu=%d\n",
		cur.RecordedAt, cur.Label, cur.Config.Sessions, cur.Config.Batch,
		cur.Config.RateHz, cur.Config.Crash, cur.Env.NumCPU)
	if base == nil {
		fmt.Fprintf(w, "ok    no earlier record with this label+config+numcpu; nothing to gate\n")
		return nil
	}
	fmt.Fprintf(w, "baseline: %s\n", base.RecordedAt)
	failed := false
	for _, d := range compareServe(cur, base, threshold) {
		status := "ok   "
		if d.Regressed {
			status = "FAIL "
			failed = true
		}
		pct := 0.0
		if d.Baseline != 0 {
			pct = 100 * (d.Current/d.Baseline - 1)
		}
		fmt.Fprintf(w, "%s %-22s %12.3f -> %12.3f (%+.1f%%)\n", status, d.Name, d.Baseline, d.Current, pct)
	}
	if failed {
		return fmt.Errorf("benchdiff: serving regression beyond %.0f%%", 100*threshold)
	}
	return nil
}
