// Command benchdiff guards against benchmark regressions: it re-runs the
// benchmark command recorded in BENCH_engine.json (or parses a
// pre-captured output file), compares every tracked benchmark's ns/op
// against the recorded baseline, and exits nonzero when any regresses
// beyond the threshold.
//
// Usage:
//
//	benchdiff [-baseline BENCH_engine.json] [-input bench.out] [-threshold 0.15]
//	          [-only REGEX] [-command CMD]
//
// With -input the tool only parses (useful in CI, where the run and the
// comparison are separate steps); otherwise it executes the baseline's
// recorded command — or the -command override — via the shell. -only
// restricts the comparison to baseline benchmarks matching the regex, so
// a focused gate (e.g. the telemetry-overhead job holding just
// BenchmarkEngineStep to 5%) does not warn about every other benchmark.
// Benchmarks present in the baseline but missing from the output are
// reported as warnings, not failures, so a partial -bench filter does
// not trip the guard. Hardware varies between the recording machine and
// CI runners — wire this as an informational job there and treat it as
// authoritative only on the recording hardware.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// baselineFile mirrors the parts of BENCH_engine.json the guard needs.
type baselineFile struct {
	Command     string                `json:"command"`
	Environment baselineEnv           `json:"environment"`
	Benchmarks  map[string]benchEntry `json:"benchmarks"`
}

// baselineEnv is the recorded hardware context. Printed next to the
// current host's shape so a cross-hardware comparison announces itself
// instead of masquerading as a code regression.
type baselineEnv struct {
	CPU        string `json:"cpu"`
	NumCPU     int    `json:"numcpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchSample is one parsed benchmark result line. Allocs are present
// only when the benchmark reported them (b.ReportAllocs or -benchmem).
type benchSample struct {
	NsPerOp   float64
	Allocs    int64
	HasAllocs bool
}

// benchLine matches one `go test -bench` result line, stripping the
// -GOMAXPROCS suffix go appends to benchmark names (Benchmark-8 etc.),
// and capturing allocs/op when the line carries it.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s(\d+) allocs/op)?`)

// parseBenchOutput extracts name → sample from `go test -bench` output.
// Later occurrences of the same benchmark (e.g. -count > 1) overwrite
// earlier ones; with best, the fastest occurrence wins instead — the
// standard noise-robust reduction for a tight gate on shared hardware.
func parseBenchOutput(r io.Reader, best bool) (map[string]benchSample, error) {
	out := make(map[string]benchSample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op %q for %s: %w", m[2], m[1], err)
		}
		s := benchSample{NsPerOp: ns}
		if m[3] != "" {
			allocs, err := strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad allocs/op %q for %s: %w", m[3], m[1], err)
			}
			s.Allocs, s.HasAllocs = allocs, true
		}
		if prev, ok := out[m[1]]; best && ok && prev.NsPerOp < ns {
			continue
		}
		out[m[1]] = s
	}
	return out, sc.Err()
}

// filterBaseline drops baseline benchmarks not matching the -only regex
// (in place). An empty pattern keeps everything; a pattern matching
// nothing is an error, since the gate would silently pass.
func filterBaseline(benchmarks map[string]benchEntry, pattern string) error {
	if pattern == "" {
		return nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("benchdiff: bad -only regex: %w", err)
	}
	for name := range benchmarks {
		if !re.MatchString(name) {
			delete(benchmarks, name)
		}
	}
	if len(benchmarks) == 0 {
		return fmt.Errorf("benchdiff: -only %q matches no baseline benchmark", pattern)
	}
	return nil
}

// diffResult is one baseline benchmark's comparison outcome.
type diffResult struct {
	Name               string
	Baseline, Current  float64 // ns/op; Current is 0 when Missing
	Missing, Regressed bool
	// Alloc gate outcome (-allocs): allocations are deterministic, so
	// any count above baseline fails; AllocsUnknown warns when the gate
	// is on but the output line carried no allocs/op.
	BaselineAllocs, CurrentAllocs int64
	AllocRegressed, AllocsUnknown bool
}

// compare evaluates every baseline benchmark against the current run.
// A benchmark regresses when its ns/op exceeds baseline·(1+threshold)
// or — with allocsGate, for baselines that record allocs_per_op — when
// its allocs/op exceeds the recorded count at all. Results come back
// sorted by name for stable output.
func compare(baseline map[string]benchEntry, current map[string]benchSample, threshold float64, allocsGate bool) []diffResult {
	results := make([]diffResult, 0, len(baseline))
	for name, b := range baseline {
		r := diffResult{Name: name, Baseline: b.NsPerOp, BaselineAllocs: b.AllocsPerOp}
		if cur, ok := current[name]; ok {
			r.Current = cur.NsPerOp
			r.Regressed = cur.NsPerOp > b.NsPerOp*(1+threshold)
			if allocsGate && b.AllocsPerOp > 0 {
				if cur.HasAllocs {
					r.CurrentAllocs = cur.Allocs
					r.AllocRegressed = cur.Allocs > b.AllocsPerOp
				} else {
					r.AllocsUnknown = true
				}
			}
		} else {
			r.Missing = true
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results
}

// printEnvironment contrasts the baseline's recorded hardware shape
// with the current host. ns/op deltas between machines of different
// core counts (or a 1-CPU recording container vs a multi-core runner)
// mix hardware and code; the header makes that visible in every gate
// log. Zero-valued baseline fields (pre-metadata records) are shown
// as "?" rather than omitted, so stale baselines are also visible.
func printEnvironment(w io.Writer, env baselineEnv) {
	baseCPU := env.CPU
	if baseCPU == "" {
		baseCPU = "?"
	}
	orQ := func(v int) string {
		if v == 0 {
			return "?"
		}
		return strconv.Itoa(v)
	}
	fmt.Fprintf(w, "baseline: %s, numcpu %s, gomaxprocs %s\n", baseCPU, orQ(env.NumCPU), orQ(env.GOMAXPROCS))
	fmt.Fprintf(w, "current:  numcpu %d, gomaxprocs %d\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_engine.json", "baseline file with recorded command and benchmarks")
	input := flag.String("input", "", "pre-captured `go test -bench` output to parse instead of running the command")
	threshold := flag.Float64("threshold", 0.15, "allowed ns/op regression fraction before failing")
	only := flag.String("only", "", "regex restricting the comparison to matching baseline benchmarks")
	command := flag.String("command", "", "shell command to run instead of the baseline's recorded one")
	best := flag.Bool("best", false, "with repeated runs (-count > 1), compare the fastest occurrence of each benchmark instead of the last")
	allocs := flag.Bool("allocs", false, "also gate allocs/op: any count above the baseline's allocs_per_op fails (allocations are deterministic — no threshold)")
	serve := flag.String("serve", "", "diff the newest record in this BENCH_serve.json against its most recent same-shape predecessor instead of running benchmarks")
	quality := flag.String("quality", "", "gate the newest record in this BENCH_quality.json against its most recent same-shape predecessor: detection delay, FPR, and missed detections may not regress")
	flag.Parse()

	if *serve != "" {
		return runServe(*serve, *threshold, os.Stdout)
	}
	if *quality != "" {
		return runQuality(*quality, *threshold, os.Stdout)
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchdiff: parse %s: %w", *baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("benchdiff: %s has no benchmarks", *baselinePath)
	}
	if err := filterBaseline(base.Benchmarks, *only); err != nil {
		return err
	}
	printEnvironment(os.Stdout, base.Environment)

	var benchOut io.Reader
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		benchOut = f
	} else {
		shellCmd := base.Command
		if *command != "" {
			shellCmd = *command
		}
		if shellCmd == "" {
			return fmt.Errorf("benchdiff: %s records no command; pass -input or -command", *baselinePath)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: running %s\n", shellCmd)
		cmd := exec.Command("sh", "-c", shellCmd)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("benchdiff: benchmark command failed: %w", err)
		}
		benchOut = strings.NewReader(string(out))
	}

	current, err := parseBenchOutput(benchOut, *best)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("benchdiff: no benchmark lines in output")
	}

	failed := false
	for _, r := range compare(base.Benchmarks, current, *threshold, *allocs) {
		switch {
		case r.Missing:
			fmt.Printf("WARN  %-55s baseline %9.0f ns/op, not in output\n", r.Name, r.Baseline)
		case r.Regressed:
			failed = true
			fmt.Printf("FAIL  %-55s %9.0f -> %9.0f ns/op (%+.1f%%, limit +%.0f%%)\n",
				r.Name, r.Baseline, r.Current, 100*(r.Current/r.Baseline-1), 100**threshold)
		default:
			fmt.Printf("ok    %-55s %9.0f -> %9.0f ns/op (%+.1f%%)\n",
				r.Name, r.Baseline, r.Current, 100*(r.Current/r.Baseline-1))
		}
		switch {
		case r.AllocRegressed:
			failed = true
			fmt.Printf("FAIL  %-55s %9d -> %9d allocs/op (allocations must not grow)\n",
				r.Name, r.BaselineAllocs, r.CurrentAllocs)
		case r.AllocsUnknown:
			fmt.Printf("WARN  %-55s baseline %9d allocs/op, none in output (benchmark not reporting allocs?)\n",
				r.Name, r.BaselineAllocs)
		case *allocs && r.BaselineAllocs > 0 && !r.Missing:
			fmt.Printf("ok    %-55s %9d -> %9d allocs/op\n", r.Name, r.BaselineAllocs, r.CurrentAllocs)
		}
	}
	if failed {
		return fmt.Errorf("benchdiff: regression beyond %.0f%%", 100**threshold)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
