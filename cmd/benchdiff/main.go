// Command benchdiff guards against benchmark regressions: it re-runs the
// benchmark command recorded in BENCH_engine.json (or parses a
// pre-captured output file), compares every tracked benchmark's ns/op
// against the recorded baseline, and exits nonzero when any regresses
// beyond the threshold.
//
// Usage:
//
//	benchdiff [-baseline BENCH_engine.json] [-input bench.out] [-threshold 0.15]
//
// With -input the tool only parses (useful in CI, where the run and the
// comparison are separate steps); otherwise it executes the baseline's
// recorded command via the shell. Benchmarks present in the baseline but
// missing from the output are reported as warnings, not failures, so a
// partial -bench filter does not trip the guard. Hardware varies between
// the recording machine and CI runners — wire this as an informational
// job there and treat it as authoritative only on the recording hardware.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile mirrors the parts of BENCH_engine.json the guard needs.
type baselineFile struct {
	Command    string                `json:"command"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// benchLine matches one `go test -bench` result line, stripping the
// -GOMAXPROCS suffix go appends to benchmark names (Benchmark-8 etc.).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

// parseBenchOutput extracts name → ns/op from `go test -bench` output.
// Later occurrences of the same benchmark (e.g. -count > 1) overwrite
// earlier ones.
func parseBenchOutput(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op %q for %s: %w", m[2], m[1], err)
		}
		out[m[1]] = ns
	}
	return out, sc.Err()
}

// diffResult is one baseline benchmark's comparison outcome.
type diffResult struct {
	Name               string
	Baseline, Current  float64 // ns/op; Current is 0 when Missing
	Missing, Regressed bool
}

// compare evaluates every baseline benchmark against the current run.
// A benchmark regresses when its ns/op exceeds baseline·(1+threshold).
// Results come back sorted by name for stable output.
func compare(baseline map[string]benchEntry, current map[string]float64, threshold float64) []diffResult {
	results := make([]diffResult, 0, len(baseline))
	for name, b := range baseline {
		r := diffResult{Name: name, Baseline: b.NsPerOp}
		if ns, ok := current[name]; ok {
			r.Current = ns
			r.Regressed = ns > b.NsPerOp*(1+threshold)
		} else {
			r.Missing = true
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_engine.json", "baseline file with recorded command and benchmarks")
	input := flag.String("input", "", "pre-captured `go test -bench` output to parse instead of running the command")
	threshold := flag.Float64("threshold", 0.15, "allowed ns/op regression fraction before failing")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchdiff: parse %s: %w", *baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("benchdiff: %s has no benchmarks", *baselinePath)
	}

	var benchOut io.Reader
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		benchOut = f
	} else {
		if base.Command == "" {
			return fmt.Errorf("benchdiff: %s records no command; pass -input", *baselinePath)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: running %s\n", base.Command)
		cmd := exec.Command("sh", "-c", base.Command)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("benchdiff: benchmark command failed: %w", err)
		}
		benchOut = strings.NewReader(string(out))
	}

	current, err := parseBenchOutput(benchOut)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("benchdiff: no benchmark lines in output")
	}

	failed := false
	for _, r := range compare(base.Benchmarks, current, *threshold) {
		switch {
		case r.Missing:
			fmt.Printf("WARN  %-55s baseline %9.0f ns/op, not in output\n", r.Name, r.Baseline)
		case r.Regressed:
			failed = true
			fmt.Printf("FAIL  %-55s %9.0f -> %9.0f ns/op (%+.1f%%, limit +%.0f%%)\n",
				r.Name, r.Baseline, r.Current, 100*(r.Current/r.Baseline-1), 100**threshold)
		default:
			fmt.Printf("ok    %-55s %9.0f -> %9.0f ns/op (%+.1f%%)\n",
				r.Name, r.Baseline, r.Current, 100*(r.Current/r.Baseline-1))
		}
	}
	if failed {
		return fmt.Errorf("benchdiff: regression beyond %.0f%%", 100**threshold)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
