package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"roboads/client"
	"roboads/internal/api"
	"roboads/internal/eval"
	"roboads/internal/router"
	"roboads/internal/mat"
	"roboads/internal/stat"
	"roboads/internal/trace"
)

// frameGen synthesizes a plausible mission for one session: the robot's
// kinematic model driven by a fixed command under process noise, with
// readings from the profile's sensor suite — the same construction the
// simulator uses, minus attacks, so every frame steps cleanly and the
// load is the nominal-mission serving cost.
type frameGen struct {
	p   eval.Profile
	rng *stat.RNG
	x   mat.Vec
	u   mat.Vec
	k   int
}

func newFrameGen(robot string, seed int64) (*frameGen, error) {
	p, err := eval.RobotProfile(robot)
	if err != nil {
		return nil, err
	}
	u := make(mat.Vec, p.Model.ControlDim())
	for i := range u {
		// A steady command at 30% of the plausibility envelope: moving,
		// comfortably inside the gate.
		if i < p.UMax.Len() && p.UMax[i] > 0 {
			u[i] = 0.3 * p.UMax[i]
		} else {
			u[i] = 0.1
		}
	}
	return &frameGen{p: p, rng: stat.NewRNG(seed), x: p.X0.Clone(), u: u}, nil
}

func (g *frameGen) next() *trace.Frame {
	g.x = g.p.Model.F(g.x, g.u).Add(g.rng.GaussianVec(g.p.ProcessStd))
	f := &trace.Frame{K: g.k, U: []float64(g.u), Readings: make(map[string][]float64, len(g.p.Suite))}
	for _, s := range g.p.Suite {
		f.Readings[s.Name()] = []float64(s.H(g.x))
	}
	g.k++
	return f
}

// sessionResult is one session's share of the run.
type sessionResult struct {
	sent, acked int
	// retries counts client-observed backpressure (429 resubmissions on
	// /step; the streaming endpoint absorbs backpressure server-side).
	retries int
	// latencies holds one client-observed ack latency (seconds) per
	// acked frame; in stream mode every frame of a lockstep batch
	// records the batch round trip.
	latencies []float64
	err       error
}

// driveAll runs one drive phase: every session gets its own generator —
// seeded per session, and reused across phases so a crash-recovery or
// migration phase continues the mission rather than restarting it — and
// its own goroutine, all stopping at the shared deadline.
func driveAll(base string, ids []string, gens []*frameGen, cfg config, dur time.Duration) []sessionResult {
	deadline := time.Now().Add(dur)
	results := make([]sessionResult, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(slot int, id string) {
			defer wg.Done()
			if cfg.batch > 1 {
				results[slot] = driveStream(base, id, gens[slot], cfg, deadline)
			} else {
				results[slot] = driveStep(base, id, gens[slot], cfg, deadline)
			}
		}(i, id)
	}
	wg.Wait()
	return results
}

// makeGens builds one deterministic generator per session slot.
func makeGens(cfg config) ([]*frameGen, error) {
	gens := make([]*frameGen, cfg.sessions)
	for i := range gens {
		g, err := newFrameGen(cfg.robot, cfg.seed+int64(i))
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}
	return gens, nil
}

// pace sleeps out the remainder of the submission interval (rate
// pacing); a closed-loop run (rate 0) never sleeps.
func pace(cfg config, iterStart time.Time) {
	if cfg.rate <= 0 {
		return
	}
	interval := time.Duration(float64(cfg.batch) / cfg.rate * float64(time.Second))
	if rest := interval - time.Since(iterStart); rest > 0 {
		time.Sleep(rest)
	}
}

// driveStep posts one frame per /step request via the client package,
// which resubmits on 429 with the server's exact millisecond hint —
// each resubmission counts as client-observed backpressure, and the
// recorded latency spans first post to final ack (the latency a real
// control loop would see).
func driveStep(base, id string, gen *frameGen, cfg config, deadline time.Time) sessionResult {
	var res sessionResult
	c := client.New(base, client.WithRetryHook(func(time.Duration) { res.retries++ }))
	ctx := context.Background()
	for time.Now().Before(deadline) {
		iterStart := time.Now()
		frame := gen.next()
		res.sent++
		t0 := time.Now()
		line, err := c.Step(ctx, id, frame)
		if err != nil {
			res.err = err
			return res
		}
		if line.Error != "" {
			res.err = fmt.Errorf("frame %d: %s", line.K, line.Error)
			return res
		}
		res.acked++
		res.latencies = append(res.latencies, time.Since(t0).Seconds())
		pace(cfg, iterStart)
	}
	return res
}

// driveStream drives the /frames streaming endpoint in lockstep
// batches: write cfg.batch frames, read cfg.batch reply lines, repeat.
// The client stream stays open for the whole phase (the server answers
// full duplex); each frame of a batch records the batch round trip as
// its latency.
func driveStream(base, id string, gen *frameGen, cfg config, deadline time.Time) sessionResult {
	var res sessionResult
	stream, err := client.New(base).Stream(context.Background(), id, cfg.wire != "json")
	if err != nil {
		res.err = err
		return res
	}
	defer stream.Close()
	for time.Now().Before(deadline) {
		iterStart := time.Now()
		t0 := time.Now()
		for i := 0; i < cfg.batch; i++ {
			if err := stream.Send(gen.next()); err != nil {
				res.err = err
				return res
			}
		}
		res.sent += cfg.batch
		for i := 0; i < cfg.batch; i++ {
			line, err := stream.Recv()
			if err != nil {
				res.err = fmt.Errorf("reply stream ended after %d acks: %w", res.acked, err)
				return res
			}
			if line.Error != "" {
				res.err = fmt.Errorf("frame %d: %s", line.K, line.Error)
				return res
			}
			res.acked++
		}
		rt := time.Since(t0).Seconds()
		for i := 0; i < cfg.batch; i++ {
			res.latencies = append(res.latencies, rt)
		}
		pace(cfg, iterStart)
	}
	return res
}

// createSessions opens n sessions for the robot. Through a router, each
// create is placed by consistent hash of the assigned ID.
func createSessions(base, robot string, n int) ([]string, error) {
	c := client.New(base)
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		info, err := c.Create(context.Background(), api.CreateRequest{Robot: robot})
		if err != nil {
			return nil, fmt.Errorf("create session: %w", err)
		}
		ids = append(ids, info.ID)
	}
	return ids, nil
}

func deleteSession(base, id string) {
	client.New(base).Delete(context.Background(), id)
}

// awaitSessions polls GET /v1/sessions until at least n sessions are
// live — after a crash restart, the moment startup recovery has revived
// the fleet (through a router, the moment its health checker readmits
// the restarted node too).
func awaitSessions(base string, n int, timeout time.Duration) error {
	c := client.New(base)
	deadline := time.Now().Add(timeout)
	for {
		list, err := c.List(context.Background())
		if err == nil && len(list) >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server did not recover %d sessions within %s", n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// serveChild is a spawned `roboads serve` or `roboads route` process.
type serveChild struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// spawnChild starts the roboads binary with args on an ephemeral port
// and waits for its "... on http://ADDR" ready line on stderr. A real
// binary (not `go run`) so kill -9 reaches the server itself.
func spawnChild(bin string, args []string) (*serveChild, error) {
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawn %s: %w", bin, err)
	}
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if idx := strings.Index(line, " on http://"); idx >= 0 {
				addr, _, _ := strings.Cut(line[idx+len(" on http://"):], " ")
				select {
				case ready <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-ready:
		return &serveChild{cmd: cmd, base: "http://" + addr}, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, errors.New("spawned process produced no ready line within 30s")
	}
}

// spawnServe starts a fleet-only server over the given state directory;
// addr "" picks an ephemeral port.
func spawnServe(cfg config, stateDir, addr string) (*serveChild, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return spawnChild(cfg.roboadsBin, []string{
		"serve",
		"-addr", addr,
		"-scenario=-1",
		"-state-dir", stateDir,
		"-fsync-every", strconv.Itoa(cfg.fsyncEvery),
		"-commit-window", cfg.commitWindow.String(),
	})
}

// spawnRoute starts a router fronting the node base URLs.
func spawnRoute(cfg config, nodes []string) (*serveChild, error) {
	return spawnChild(cfg.roboadsBin, []string{
		"route",
		"-addr", "127.0.0.1:0",
		"-nodes", strings.Join(nodes, ","),
		"-health-interval", "100ms",
	})
}

// killAndRestart SIGKILLs the child — no drain, no final fsync beyond
// what the WAL already guaranteed — and starts a fresh server on the
// same state directory. With sameAddr the replacement rebinds the dead
// child's port, so a router's static node list still reaches it.
func (c *serveChild) killAndRestart(cfg config, stateDir string, sameAddr bool) (*serveChild, error) {
	if err := c.cmd.Process.Kill(); err != nil {
		return nil, err
	}
	c.cmd.Wait()
	addr := ""
	if sameAddr {
		addr = strings.TrimPrefix(c.base, "http://")
	}
	fmt.Fprintln(os.Stderr, "kill -9 delivered; restarting on", stateDir)
	return spawnServe(cfg, stateDir, addr)
}

// stop terminates the child at end of run. Idempotent enough for the
// deferred double-stop after a crash restart (Kill on a dead process
// just errors).
func (c *serveChild) stop() {
	if c == nil || c.cmd == nil || c.cmd.Process == nil {
		return
	}
	c.cmd.Process.Kill()
	c.cmd.Wait()
}

// cluster is a spawned multi-node fleet: N serve children plus a router
// fronting them. All loadgen traffic goes through the router base.
type cluster struct {
	nodes  []*serveChild
	dirs   []string
	router *serveChild
}

// spawnCluster starts cfg.nodes serve children (each on its own state
// subdirectory, so a killed node restarts over its own WALs) and a
// router over their base URLs.
func spawnCluster(cfg config, stateDir string) (*cluster, error) {
	cl := &cluster{}
	for i := 0; i < cfg.nodes; i++ {
		dir := filepath.Join(stateDir, fmt.Sprintf("node%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			cl.stop()
			return nil, err
		}
		node, err := spawnServe(cfg, dir, "")
		if err != nil {
			cl.stop()
			return nil, err
		}
		cl.nodes = append(cl.nodes, node)
		cl.dirs = append(cl.dirs, dir)
	}
	bases := make([]string, len(cl.nodes))
	for i, n := range cl.nodes {
		bases[i] = n.base
	}
	router, err := spawnRoute(cfg, bases)
	if err != nil {
		cl.stop()
		return nil, err
	}
	cl.router = router
	return cl, nil
}

// bases lists the node base URLs in spawn order — the router's -nodes
// list, which is also what placement ranking hashes over.
func (cl *cluster) bases() []string {
	out := make([]string, len(cl.nodes))
	for i, n := range cl.nodes {
		out[i] = n.base
	}
	return out
}

func (cl *cluster) stop() {
	cl.router.stop()
	for _, n := range cl.nodes {
		n.stop()
	}
}

// migrateHalf live-migrates every other session to its next-ranked node
// (the session's failover successor in placement order), through the
// router — proof the fleet keeps serving while sessions move. Returns
// how many moved.
func migrateHalf(base string, ids, nodes []string) (int, error) {
	c := client.New(base)
	moved := 0
	for i, id := range ids {
		if i%2 != 0 {
			continue
		}
		target := router.Rank(id, nodes)[1]
		if _, err := c.Migrate(context.Background(), id, target); err != nil {
			return moved, fmt.Errorf("session %s -> %s: %w", id, target, err)
		}
		moved++
	}
	return moved, nil
}

// checkRecovered asserts the durability contract after kill -9: per
// session, frames acked before the kill ≤ frames recovered ≤ frames
// sent. Group commit acks only after the covering fsync, so recovery
// may never come up short of an ack.
func checkRecovered(base string, ids []string, firstHalf []sessionResult) error {
	c := client.New(base)
	for i, id := range ids {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			return fmt.Errorf("status %s: %w", id, err)
		}
		if st.FramesApplied < firstHalf[i].acked || st.FramesApplied > firstHalf[i].sent {
			return fmt.Errorf("session %s: recovered %d frames with %d acked, %d sent (want acked <= recovered <= sent)",
				id, st.FramesApplied, firstHalf[i].acked, firstHalf[i].sent)
		}
	}
	return nil
}
