package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"roboads/internal/eval"
	"roboads/internal/fleet"
	"roboads/internal/mat"
	"roboads/internal/stat"
	"roboads/internal/trace"
)

// frameGen synthesizes a plausible mission for one session: the robot's
// kinematic model driven by a fixed command under process noise, with
// readings from the profile's sensor suite — the same construction the
// simulator uses, minus attacks, so every frame steps cleanly and the
// load is the nominal-mission serving cost.
type frameGen struct {
	p   eval.Profile
	rng *stat.RNG
	x   mat.Vec
	u   mat.Vec
	k   int
}

func newFrameGen(robot string, seed int64) (*frameGen, error) {
	p, err := eval.RobotProfile(robot)
	if err != nil {
		return nil, err
	}
	u := make(mat.Vec, p.Model.ControlDim())
	for i := range u {
		// A steady command at 30% of the plausibility envelope: moving,
		// comfortably inside the gate.
		if i < p.UMax.Len() && p.UMax[i] > 0 {
			u[i] = 0.3 * p.UMax[i]
		} else {
			u[i] = 0.1
		}
	}
	return &frameGen{p: p, rng: stat.NewRNG(seed), x: p.X0.Clone(), u: u}, nil
}

func (g *frameGen) next() *trace.Frame {
	g.x = g.p.Model.F(g.x, g.u).Add(g.rng.GaussianVec(g.p.ProcessStd))
	f := &trace.Frame{K: g.k, U: []float64(g.u), Readings: make(map[string][]float64, len(g.p.Suite))}
	for _, s := range g.p.Suite {
		f.Readings[s.Name()] = []float64(s.H(g.x))
	}
	g.k++
	return f
}

// sessionResult is one session's share of the run.
type sessionResult struct {
	sent, acked int
	// retries counts client-observed backpressure (429 resubmissions on
	// /step; the streaming endpoint absorbs backpressure server-side).
	retries int
	// latencies holds one client-observed ack latency (seconds) per
	// acked frame; in stream mode every frame of a lockstep batch
	// records the batch round trip.
	latencies []float64
	err       error
}

// driveAll runs one drive phase: every session gets its own generator
// (seeded per session, so a crash-recovery phase regenerates nothing)
// and its own goroutine, all stopping at the shared deadline.
func driveAll(base string, ids []string, cfg config, dur time.Duration) []sessionResult {
	deadline := time.Now().Add(dur)
	results := make([]sessionResult, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(slot int, id string) {
			defer wg.Done()
			gen, err := newFrameGen(cfg.robot, cfg.seed+int64(slot))
			if err != nil {
				results[slot].err = err
				return
			}
			if cfg.batch > 1 {
				results[slot] = driveStream(base, id, gen, cfg, deadline)
			} else {
				results[slot] = driveStep(base, id, gen, cfg, deadline)
			}
		}(i, id)
	}
	wg.Wait()
	return results
}

// pace sleeps out the remainder of the submission interval (rate
// pacing); a closed-loop run (rate 0) never sleeps.
func pace(cfg config, iterStart time.Time) {
	if cfg.rate <= 0 {
		return
	}
	interval := time.Duration(float64(cfg.batch) / cfg.rate * float64(time.Second))
	if rest := interval - time.Since(iterStart); rest > 0 {
		time.Sleep(rest)
	}
}

// driveStep posts one frame per /step request, resubmitting on 429
// with the server's hint — each resubmission counts as client-observed
// backpressure, and the recorded latency spans first post to final ack
// (the latency a real control loop would see).
func driveStep(base, id string, gen *frameGen, cfg config, deadline time.Time) sessionResult {
	var res sessionResult
	url := base + "/v1/sessions/" + id + "/step"
	for time.Now().Before(deadline) {
		iterStart := time.Now()
		body, err := json.Marshal(gen.next())
		if err != nil {
			res.err = err
			return res
		}
		res.sent++
		t0 := time.Now()
		for {
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				res.err = err
				return res
			}
			var line fleet.ReplyLine
			derr := json.NewDecoder(resp.Body).Decode(&line)
			resp.Body.Close()
			if derr != nil {
				res.err = derr
				return res
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				res.retries++
				delay := 25 * time.Millisecond
				if line.RetryAfterMs > 0 {
					delay = time.Duration(line.RetryAfterMs) * time.Millisecond
				}
				time.Sleep(delay)
				continue
			}
			if line.Error != "" {
				res.err = fmt.Errorf("frame %d: %s", line.K, line.Error)
				return res
			}
			res.acked++
			res.latencies = append(res.latencies, time.Since(t0).Seconds())
			break
		}
		pace(cfg, iterStart)
	}
	return res
}

// driveStream drives the /frames streaming endpoint in lockstep
// batches: write cfg.batch frames, read cfg.batch reply lines, repeat.
// The request body is an io.Pipe so the stream stays open for the whole
// phase (the server answers full duplex); each frame of a batch records
// the batch round trip as its latency.
func driveStream(base, id string, gen *frameGen, cfg config, deadline time.Time) sessionResult {
	var res sessionResult
	contentType := fleet.ContentTypeBinaryFrames
	if cfg.wire == "json" {
		contentType = "application/x-ndjson"
	}
	pr, pw := io.Pipe()
	defer pw.Close()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sessions/"+id+"/frames", pr)
	if err != nil {
		res.err = err
		return res
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		res.err = err
		return res
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		res.err = fmt.Errorf("frames stream: status %d", resp.StatusCode)
		return res
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	var buf []byte
	var jsonBuf bytes.Buffer
	enc := json.NewEncoder(&jsonBuf)
	for time.Now().Before(deadline) {
		iterStart := time.Now()
		buf = buf[:0]
		jsonBuf.Reset()
		for i := 0; i < cfg.batch; i++ {
			f := gen.next()
			if cfg.wire == "json" {
				if err := enc.Encode(f); err != nil {
					res.err = err
					return res
				}
			} else {
				buf = trace.AppendFrameRecord(buf, f)
			}
		}
		if cfg.wire == "json" {
			buf = jsonBuf.Bytes()
		}
		t0 := time.Now()
		if _, err := pw.Write(buf); err != nil {
			res.err = err
			return res
		}
		res.sent += cfg.batch
		for i := 0; i < cfg.batch; i++ {
			if !sc.Scan() {
				res.err = fmt.Errorf("reply stream ended after %d acks: %v", res.acked, sc.Err())
				return res
			}
			var line fleet.ReplyLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				res.err = err
				return res
			}
			if line.Error != "" {
				res.err = fmt.Errorf("frame %d: %s", line.K, line.Error)
				return res
			}
			res.acked++
		}
		rt := time.Since(t0).Seconds()
		for i := 0; i < cfg.batch; i++ {
			res.latencies = append(res.latencies, rt)
		}
		pace(cfg, iterStart)
	}
	return res
}

// createSessions opens n sessions for the robot, or restores them if a
// recovering server still holds their state.
func createSessions(base, robot string, n int) ([]string, error) {
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		body, err := json.Marshal(fleet.CreateRequest{Robot: robot})
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusCreated {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return nil, fmt.Errorf("create session: status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
		}
		var info fleet.SessionInfo
		derr := json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if derr != nil {
			return nil, derr
		}
		ids = append(ids, info.ID)
	}
	return ids, nil
}

func deleteSession(base, id string) {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// awaitSessions polls GET /v1/sessions until at least n sessions are
// live — after a crash restart, the moment startup recovery has revived
// the fleet.
func awaitSessions(base string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/sessions")
		if err == nil {
			var list []fleet.SessionStatus
			derr := json.NewDecoder(resp.Body).Decode(&list)
			resp.Body.Close()
			if derr == nil && len(list) >= n {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server did not recover %d sessions within %s", n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// serveChild is a spawned `roboads serve` process.
type serveChild struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// spawnServe starts a fleet-only server on an ephemeral port and waits
// for its "serving on http://..." ready line. The child is a real
// binary (not `go run`) so kill -9 reaches the server itself.
func spawnServe(cfg config) (*serveChild, error) {
	args := []string{
		"serve",
		"-addr", "127.0.0.1:0",
		"-scenario=-1",
		"-state-dir", cfg.stateDir,
		"-fsync-every", strconv.Itoa(cfg.fsyncEvery),
		"-commit-window", cfg.commitWindow.String(),
	}
	cmd := exec.Command(cfg.roboadsBin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawn %s: %w", cfg.roboadsBin, err)
	}
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "serving on http://"); ok {
				addr, _, _ := strings.Cut(rest, " ")
				select {
				case ready <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-ready:
		return &serveChild{cmd: cmd, base: "http://" + addr}, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, errors.New("spawned server produced no ready line within 30s")
	}
}

// killAndRestart SIGKILLs the child — no drain, no final fsync beyond
// what the WAL already guaranteed — and starts a fresh server on the
// same state directory.
func (c *serveChild) killAndRestart(cfg config) (*serveChild, error) {
	if err := c.cmd.Process.Kill(); err != nil {
		return nil, err
	}
	c.cmd.Wait()
	fmt.Fprintln(os.Stderr, "kill -9 delivered; restarting on", cfg.stateDir)
	return spawnServe(cfg)
}

// stop terminates the child at end of run. Idempotent enough for the
// deferred double-stop after a crash restart (Kill on a dead process
// just errors).
func (c *serveChild) stop() {
	if c == nil || c.cmd == nil || c.cmd.Process == nil {
		return
	}
	c.cmd.Process.Kill()
	c.cmd.Wait()
}
