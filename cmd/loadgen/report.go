package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"roboads/client"
	"roboads/internal/benchserve"
	"roboads/internal/fleet"
	"roboads/internal/telemetry"
)

// Record aliases the shared BENCH_serve.json record type
// (internal/benchserve) that cmd/benchdiff -serve gates.
type Record = benchserve.Record

// quantiles summarizes a latency sample in milliseconds.
func quantiles(secs []float64) benchserve.LatencyMs {
	if len(secs) == 0 {
		return benchserve.LatencyMs{}
	}
	s := append([]float64(nil), secs...)
	sort.Float64s(s)
	q := func(p float64) float64 { return s[int(p*float64(len(s)-1))] * 1e3 }
	return benchserve.LatencyMs{P50: q(0.50), P95: q(0.95), P99: q(0.99), Max: s[len(s)-1] * 1e3}
}

// metricsSnapshot is the slice of /snapshot loadgen reads: the
// telemetry registry map nested under the snapshot's "metrics" key.
type metricsSnapshot struct {
	Metrics struct {
		Counters   map[string]int64                       `json:"counters"`
		Gauges     map[string]float64                     `json:"gauges"`
		Histograms map[string]telemetry.HistogramSnapshot `json:"histograms"`
	} `json:"metrics"`
}

func scrapeSnapshot(base string) (*metricsSnapshot, error) {
	var snap metricsSnapshot
	if err := getJSON(base+"/snapshot", &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

func scrapeTrace(base string) (*telemetry.TraceSnapshot, error) {
	raw, err := client.New(base).DebugTrace(context.Background())
	if err != nil {
		return nil, err
	}
	var snap telemetry.TraceSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// rejectDeltas diffs the cause-split reject counters across the run.
// A crash run restarts the server (fresh counters), so causes are
// floored at zero rather than trusting the subtraction.
func rejectDeltas(start, end *metricsSnapshot) map[string]int64 {
	causes := []string{
		fleet.RejectCauseQueueFull, fleet.RejectCauseSessionClosed,
		fleet.RejectCauseShuttingDown, fleet.RejectCauseSessionCap,
	}
	out := make(map[string]int64, len(causes))
	for _, cause := range causes {
		name := fleet.MetricRejects + `{cause="` + cause + `"}`
		if d := end.Metrics.Counters[name] - start.Metrics.Counters[name]; d > 0 {
			out[cause] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func buildRecord(cfg config, results []sessionResult, driveSeconds, recovery float64,
	startSnap, endSnap *metricsSnapshot, tr *telemetry.TraceSnapshot) *Record {
	var sent, acked, retries, errs int
	var lats []float64
	for i := range results {
		sent += results[i].sent
		acked += results[i].acked
		retries += results[i].retries
		lats = append(lats, results[i].latencies...)
		if results[i].err != nil {
			errs++
			fmt.Fprintf(os.Stderr, "session %d error: %v\n", i, results[i].err)
		}
	}
	rejects := rejectDeltas(startSnap, endSnap)
	var serverRejects int64
	for _, n := range rejects {
		serverRejects += n
	}
	res := benchserve.Results{
		FramesSent:      sent,
		FramesAcked:     acked,
		ClientRetries:   retries,
		SessionErrors:   errs,
		StepLatencyMs:   quantiles(lats),
		RejectsByCause:  rejects,
		RecoverySeconds: recovery,
	}
	if driveSeconds > 0 {
		res.FramesPerSecond = float64(acked) / driveSeconds
		res.SessionsPerCore = res.FramesPerSecond / float64(runtime.NumCPU())
	}
	// Client 429s and server-side rejects overlap for /step (each 429
	// is one queue_full reject), so take whichever view saw more rather
	// than double-counting.
	if rejected := math.Max(float64(retries), float64(serverRejects)); rejected > 0 {
		res.BackpressureRate = rejected / (float64(acked) + rejected)
	}
	if tr != nil && tr.Enabled && tr.Frames > 0 {
		res.ServerFrames = tr.Frames
		res.ServerE2EMs = benchserve.LatencyMs{P50: tr.E2E.P50 * 1e3, P95: tr.E2E.P95 * 1e3, P99: tr.E2E.P99 * 1e3, Max: tr.E2E.Max * 1e3}
		res.StageSumP50Ms = tr.StageSumP50Seconds * 1e3
		res.ServerStageP50Ms = make(map[string]float64, len(tr.Stages))
		for stage, hs := range tr.Stages {
			res.ServerStageP50Ms[stage] = hs.P50 * 1e3
		}
		if tr.E2E.P50 > 0 {
			res.AttributionError = math.Abs(tr.StageSumP50Seconds-tr.E2E.P50) / tr.E2E.P50
		}
	}
	return &Record{
		Label:      cfg.label,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Config: benchserve.Config{
			Sessions:        cfg.sessions,
			RateHz:          cfg.rate,
			Batch:           cfg.batch,
			Wire:            cfg.wire,
			Robot:           cfg.robot,
			DurationSeconds: cfg.duration.Seconds(),
			FsyncEvery:      cfg.fsyncEvery,
			CommitWindowMs:  float64(cfg.commitWindow) / float64(time.Millisecond),
			Crash:           cfg.crash,
			Spawned:         cfg.spawn,
			Nodes:           cfg.nodes,
			Migrate:         cfg.migrate,
		},
		Env: benchserve.Env{
			Go:     runtime.Version(),
			OS:     runtime.GOOS,
			Arch:   runtime.GOARCH,
			NumCPU: runtime.NumCPU(),
		},
		Results: res,
	}
}

func printRecord(w io.Writer, r *Record) {
	fmt.Fprintf(w, "sent %d, acked %d (%.0f frames/s, %.1f sessions/core), retries %d, backpressure %.2f%%\n",
		r.Results.FramesSent, r.Results.FramesAcked, r.Results.FramesPerSecond,
		r.Results.SessionsPerCore, r.Results.ClientRetries, 100*r.Results.BackpressureRate)
	fmt.Fprintf(w, "step latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
		r.Results.StepLatencyMs.P50, r.Results.StepLatencyMs.P95,
		r.Results.StepLatencyMs.P99, r.Results.StepLatencyMs.Max)
	if r.Results.ServerFrames > 0 {
		fmt.Fprintf(w, "server e2e ms: p50 %.3f  p95 %.3f  p99 %.3f (stage p50 sum %.3f, attribution error %.1f%%)\n",
			r.Results.ServerE2EMs.P50, r.Results.ServerE2EMs.P95, r.Results.ServerE2EMs.P99,
			r.Results.StageSumP50Ms, 100*r.Results.AttributionError)
	}
	if r.Results.RecoverySeconds > 0 {
		fmt.Fprintf(w, "recovery after kill -9: %.3fs\n", r.Results.RecoverySeconds)
	}
}

// appendRecord adds r to the trajectory at path.
func appendRecord(path string, r *Record) error {
	return benchserve.Append(path, r)
}
