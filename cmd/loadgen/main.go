// Command loadgen is the serving-stack load harness (ROADMAP item 5):
// it drives a `roboads serve` fleet endpoint at a configurable
// sessions × rate × batch size × durability policy, measures
// client-observed step latency (p50/p95/p99), throughput, sessions per
// core, and backpressure, optionally SIGKILLs a spawned server mid-run
// to measure crash-recovery time, cross-checks the server's frame-trace
// stage attribution against its end-to-end latency, and appends one
// record to BENCH_serve.json — the fleet-level counterpart of
// BENCH_engine.json that cmd/benchdiff gates.
//
// Typical smoke run (spawns its own server on a scratch state dir):
//
//	go build -o /tmp/roboads ./cmd/roboads
//	go run ./cmd/loadgen -spawn -roboads /tmp/roboads \
//	    -sessions 8 -duration 10s -batch 4 -crash \
//	    -check-attribution 0.10 -out BENCH_serve.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

type config struct {
	// addr targets an already-running server (host:port); empty with
	// spawn set runs a private one.
	addr string
	// spawn runs a child `roboads serve` (binary at roboadsBin) on a
	// scratch or caller-provided state dir, on an ephemeral port.
	spawn      bool
	roboadsBin string
	stateDir   string
	// Durability policy for the spawned server.
	fsyncEvery   int
	commitWindow time.Duration

	sessions int
	// rate is frames/s per session; 0 runs closed-loop (next frame as
	// soon as the previous ack lands).
	rate     float64
	duration time.Duration
	// batch > 1 drives the streaming /frames endpoint in lockstep
	// batches of this size; 1 posts frames one at a time to /step.
	batch int
	wire  string
	robot string
	seed  int64

	// nodes > 1 spawns that many serve children plus a `roboads route`
	// router fronting them, and drives all traffic through the router
	// (multi-node mode; requires spawn).
	nodes int
	// migrate live-migrates every other session to its next-ranked node
	// at half time (multi-node mode only).
	migrate bool

	// crash SIGKILLs the spawned server at half time (in multi-node
	// mode: the first node, while the router fails traffic over),
	// restarts it on the same state dir, measures time back to all
	// sessions recovered, and finishes the run on the revived sessions.
	crash bool
	// checkAttribution, when > 0, fails the run unless the server's
	// per-stage p50 sum is within this fraction of its end-to-end p50
	// (the span self-validation contract).
	checkAttribution float64

	out   string
	label string
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	var cfg config
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "", "drive an existing server at this address (host:port); mutually exclusive with -spawn")
	fs.BoolVar(&cfg.spawn, "spawn", false, "spawn a private `roboads serve` child for the run (required for -crash)")
	fs.StringVar(&cfg.roboadsBin, "roboads", "", "path to the roboads binary (required with -spawn; a real binary, so -crash can SIGKILL it)")
	fs.StringVar(&cfg.stateDir, "state-dir", "", "state directory for the spawned server (default: a temp dir, removed afterwards)")
	fs.IntVar(&cfg.fsyncEvery, "fsync-every", 0, "spawned server WAL fsync cadence (0/1 = every frame, n>1 = batched, negative = never)")
	fs.DurationVar(&cfg.commitWindow, "commit-window", 2*time.Millisecond, "spawned server group-commit window; 0 = inline fsync per -fsync-every")
	fs.IntVar(&cfg.sessions, "sessions", 8, "concurrent sessions to drive")
	fs.Float64Var(&cfg.rate, "rate", 0, "frames/s per session; 0 = closed loop")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "total drive time (halved around the kill with -crash)")
	fs.IntVar(&cfg.batch, "batch", 1, "frames per submission: 1 = /step per frame, >1 = lockstep batches on the /frames stream")
	fs.StringVar(&cfg.wire, "wire", "binary", "frame wire format for -batch>1 streams: binary|json")
	fs.StringVar(&cfg.robot, "robot", "khepera", "robot profile driven in every session")
	fs.Int64Var(&cfg.seed, "seed", 42, "base seed for the per-session frame generators")
	fs.IntVar(&cfg.nodes, "nodes", 1, "spawn this many serve nodes plus a router and drive through the router (multi-node mode; needs -spawn)")
	fs.BoolVar(&cfg.migrate, "migrate", false, "live-migrate every other session to its next-ranked node at half time (needs -nodes > 1)")
	fs.BoolVar(&cfg.crash, "crash", false, "SIGKILL the spawned server (multi-node: the first node) at half time and measure recovery")
	fs.Float64Var(&cfg.checkAttribution, "check-attribution", 0, "fail unless |sum(stage p50) - e2e p50| <= this fraction of e2e p50 (0 = report only)")
	fs.StringVar(&cfg.out, "out", "BENCH_serve.json", "serving benchmark trajectory to append to; empty = don't write")
	fs.StringVar(&cfg.label, "label", "", "record label (benchdiff -serve compares records with equal label+config)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.sessions <= 0 || cfg.batch <= 0 || cfg.duration <= 0 {
		return fmt.Errorf("sessions (%d), batch (%d), and duration (%s) must be positive", cfg.sessions, cfg.batch, cfg.duration)
	}
	if cfg.wire != "binary" && cfg.wire != "json" {
		return fmt.Errorf("unknown wire format %q (want binary|json)", cfg.wire)
	}
	if cfg.spawn == (cfg.addr != "") {
		return fmt.Errorf("exactly one of -spawn or -addr is required")
	}
	if cfg.spawn && cfg.roboadsBin == "" {
		return fmt.Errorf("-spawn needs -roboads (path to a built roboads binary)")
	}
	if cfg.crash && !cfg.spawn {
		return fmt.Errorf("-crash needs -spawn (cannot SIGKILL a server loadgen does not own)")
	}
	if cfg.nodes < 1 {
		return fmt.Errorf("-nodes (%d) must be at least 1", cfg.nodes)
	}
	if cfg.nodes > 1 && !cfg.spawn {
		return fmt.Errorf("-nodes > 1 needs -spawn (loadgen owns the cluster it routes)")
	}
	if cfg.migrate && cfg.nodes < 2 {
		return fmt.Errorf("-migrate needs -nodes > 1 (a migration target)")
	}

	rec, err := runLoad(cfg)
	if err != nil {
		return err
	}
	printRecord(os.Stderr, rec)
	if cfg.out != "" {
		if err := appendRecord(cfg.out, rec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "appended record to %s\n", cfg.out)
	}
	if cfg.checkAttribution > 0 {
		if rec.Results.ServerFrames == 0 {
			return fmt.Errorf("attribution check: server reported no traced frames (is the server running with -trace?)")
		}
		if rec.Results.AttributionError > cfg.checkAttribution {
			return fmt.Errorf("attribution check: stage p50 sum %.3fms vs e2e p50 %.3fms — error %.1f%% exceeds %.1f%%",
				rec.Results.StageSumP50Ms, rec.Results.ServerE2EMs.P50,
				100*rec.Results.AttributionError, 100*cfg.checkAttribution)
		}
		fmt.Fprintf(os.Stderr, "attribution ok: stage sum %.3fms vs e2e %.3fms (%.1f%% <= %.1f%%)\n",
			rec.Results.StageSumP50Ms, rec.Results.ServerE2EMs.P50,
			100*rec.Results.AttributionError, 100*cfg.checkAttribution)
	}
	return nil
}

// runLoad executes one full measurement run and assembles its record.
func runLoad(cfg config) (*Record, error) {
	base := cfg.addr
	var child *serveChild
	var cl *cluster
	if cfg.spawn {
		dir := cfg.stateDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "loadgen-state-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		cfg.stateDir = dir
		var err error
		if cfg.nodes > 1 {
			cl, err = spawnCluster(cfg, dir)
			if err != nil {
				return nil, err
			}
			defer cl.stop()
			base = cl.router.base
		} else {
			child, err = spawnServe(cfg, dir, "")
			if err != nil {
				return nil, err
			}
			defer child.stop()
			base = child.base
		}
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	startSnap, err := scrapeSnapshot(base)
	if err != nil {
		return nil, fmt.Errorf("scrape /snapshot: %w (server up at %s?)", err, base)
	}

	gens, err := makeGens(cfg)
	if err != nil {
		return nil, err
	}
	ids, err := createSessions(base, cfg.robot, cfg.sessions)
	if err != nil {
		return nil, err
	}

	var recovery float64
	var results []sessionResult
	driveStart := time.Now()
	if cfg.crash || cfg.migrate {
		half := cfg.duration / 2
		results = driveAll(base, ids, gens, cfg, half)
		if cfg.migrate {
			moved, err := migrateHalf(base, ids, cl.bases())
			if err != nil {
				return nil, fmt.Errorf("migrate: %w", err)
			}
			fmt.Fprintf(os.Stderr, "migrated %d of %d sessions to their next-ranked nodes\n", moved, len(ids))
		}
		if cfg.crash {
			killedAt := time.Now()
			if cl != nil {
				// Kill the first node; the router fails traffic over while
				// it is down, and its static node list still reaches the
				// replacement on the same port.
				restarted, err := cl.nodes[0].killAndRestart(cfg, cl.dirs[0], true)
				if err != nil {
					return nil, fmt.Errorf("crash recovery: %w", err)
				}
				cl.nodes[0] = restarted
			} else {
				restarted, err := child.killAndRestart(cfg, cfg.stateDir, false)
				if err != nil {
					return nil, fmt.Errorf("crash recovery: %w", err)
				}
				child = restarted
				defer child.stop()
				base = child.base
			}
			if err := awaitSessions(base, cfg.sessions, 30*time.Second); err != nil {
				return nil, fmt.Errorf("crash recovery: %w", err)
			}
			recovery = time.Since(killedAt).Seconds()
			fmt.Fprintf(os.Stderr, "recovered %d sessions %.3fs after kill -9\n", cfg.sessions, recovery)
			// Durability contract: every frame acked before the kill is
			// present after recovery, and nothing not sent appears.
			if err := checkRecovered(base, ids, results); err != nil {
				return nil, fmt.Errorf("crash recovery: %w", err)
			}
		}
		// The fleet restores the same session IDs; finish the run on
		// them — the generators continue their missions where the first
		// half stopped — to prove the sessions actually serve.
		tail := driveAll(base, ids, gens, cfg, half)
		results = append(results, tail...)
	} else {
		results = driveAll(base, ids, gens, cfg, cfg.duration)
	}
	driveSeconds := time.Since(driveStart).Seconds()
	if cfg.crash {
		// Recovery downtime is reported separately; throughput rates
		// only over time spent actually driving.
		driveSeconds -= recovery
	}

	endSnap, err := scrapeSnapshot(base)
	if err != nil {
		return nil, fmt.Errorf("scrape /snapshot: %w", err)
	}
	trace, err := scrapeTrace(base)
	if err != nil {
		return nil, fmt.Errorf("scrape /v1/debug/trace: %w", err)
	}

	for _, id := range ids {
		deleteSession(base, id)
	}
	return buildRecord(cfg, results, driveSeconds, recovery, startSnap, endSnap, trace), nil
}
