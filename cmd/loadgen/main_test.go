package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"roboads/internal/benchserve"
	"roboads/internal/fleet"
	"roboads/internal/telemetry"
)

// newTraceServer assembles the same HTTP surface `roboads serve -trace`
// exposes — telemetry at /, fleet at /v1/ with tracing and group-commit
// durability — so runLoad can be exercised in-process.
func newTraceServer(t *testing.T) *httptest.Server {
	t.Helper()
	tel := telemetry.New(telemetry.Options{})
	tracer := telemetry.NewTracer(tel.Registry())
	m, err := fleet.NewManager(fleet.Config{
		Workers: 2,
		Build:   fleet.DefaultBuilder(),
		Metrics: tel.Registry(),
		Trace:   tracer,
		Durability: fleet.Durability{
			Dir:          t.TempDir(),
			CommitWindow: time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", tel.Handler())
	mux.Handle("/v1/", m.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return srv
}

// TestRunLoadStream runs a short streaming load against an in-process
// traced server and pins the record: frames flow, capacity figures are
// derived, the server-side trace is scraped, and its stage attribution
// lands within tolerance of end-to-end latency.
func TestRunLoadStream(t *testing.T) {
	srv := newTraceServer(t)
	cfg := config{
		addr:     strings.TrimPrefix(srv.URL, "http://"),
		sessions: 4,
		duration: 1200 * time.Millisecond,
		batch:    2,
		wire:     "binary",
		robot:    "khepera",
		seed:     7,
		label:    "test-stream",
	}
	rec, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rec.Results
	if res.SessionErrors != 0 {
		t.Fatalf("%d sessions errored", res.SessionErrors)
	}
	if res.FramesAcked == 0 || res.FramesAcked != res.FramesSent {
		t.Fatalf("acked %d of %d sent", res.FramesAcked, res.FramesSent)
	}
	if res.FramesPerSecond <= 0 || res.SessionsPerCore <= 0 {
		t.Fatalf("capacity figures: %+v", res)
	}
	if res.StepLatencyMs.P50 <= 0 || res.StepLatencyMs.P99 < res.StepLatencyMs.P50 {
		t.Fatalf("client latency summary: %+v", res.StepLatencyMs)
	}
	if res.ServerFrames == 0 {
		t.Fatal("no server-side traced frames scraped")
	}
	if res.StageSumP50Ms <= 0 || res.ServerE2EMs.P50 <= 0 {
		t.Fatalf("server attribution: %+v", res)
	}
	// The smoke contract: per-stage p50s sum to the e2e p50 within 10%.
	if res.AttributionError > 0.10 {
		t.Fatalf("attribution error %.1f%% (stage sum %.3fms vs e2e %.3fms)",
			100*res.AttributionError, res.StageSumP50Ms, res.ServerE2EMs.P50)
	}
	if rec.Config.Sessions != 4 || rec.Config.Batch != 2 || rec.Config.Wire != "binary" {
		t.Fatalf("record config does not mirror cfg: %+v", rec.Config)
	}

	// Round trip through the trajectory file.
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := appendRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	f, err := benchserve.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != benchserve.Version || len(f.Records) != 1 {
		t.Fatalf("trajectory: version %d, %d records", f.Version, len(f.Records))
	}
	got := f.Records[0]
	if got.Label != "test-stream" || got.Config != rec.Config || got.Results.FramesAcked != res.FramesAcked {
		t.Fatalf("round-tripped record differs: %+v", got)
	}
}

// TestRunLoadStep pins the per-frame /step path (batch=1) and rate
// pacing.
func TestRunLoadStep(t *testing.T) {
	srv := newTraceServer(t)
	cfg := config{
		addr:     strings.TrimPrefix(srv.URL, "http://"),
		sessions: 2,
		rate:     50, // paced: ~40 frames/session over the window
		duration: 800 * time.Millisecond,
		batch:    1,
		wire:     "binary",
		robot:    "khepera",
		seed:     3,
	}
	rec, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rec.Results
	if res.SessionErrors != 0 || res.FramesAcked == 0 {
		t.Fatalf("step drive: %+v", res)
	}
	// Pacing holds the rate at or under the ask (closed-loop would be
	// far faster than 2 sessions x 50 Hz on this profile).
	if got, limit := res.FramesPerSecond, 2*50*1.25; got > limit {
		t.Fatalf("paced run did %.0f frames/s, expected <= %.0f", got, limit)
	}
	if res.ServerFrames == 0 {
		t.Fatal("no traced frames on the /step path")
	}
}
