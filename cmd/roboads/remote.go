package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"roboads/internal/detect"
	"roboads/internal/fleet"
	"roboads/internal/trace"
)

// wireCondition parses a canonical condition string ("S0/A0",
// "S{ips,lidar}/A1") back into a detect.Condition, so the remote
// timeline renders in the same Table III code notation as local replay
// and the two outputs diff clean.
func wireCondition(s string) detect.Condition {
	var c detect.Condition
	sensors, actuator, ok := strings.Cut(s, "/")
	if !ok {
		return c
	}
	if rest, found := strings.CutPrefix(sensors, "S{"); found {
		c.Sensors = strings.Split(strings.TrimSuffix(rest, "}"), ",")
	}
	c.Actuator = actuator == "A1"
	return c
}

// stepRemote posts one frame to /step, absorbing backpressure with the
// server's hint. It prefers the exact ReplyLine.RetryAfterMs from the
// 429 body: the Retry-After header only speaks whole seconds, so the
// default 25ms hint ceils to "1" there — a coarse fallback for generic
// HTTP clients, 40x too long for this one.
func stepRemote(base, id string, frame *trace.Frame) (*fleet.ReplyLine, error) {
	body, err := json.Marshal(frame)
	if err != nil {
		return nil, err
	}
	for {
		resp, err := http.Post(base+"/v1/sessions/"+id+"/step", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		var line fleet.ReplyLine
		derr := json.NewDecoder(resp.Body).Decode(&line)
		header := resp.Header
		resp.Body.Close()
		if derr != nil {
			return nil, derr
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(retryDelay(header, &line))
			continue
		}
		if line.Error != "" {
			return nil, fmt.Errorf("frame %d: %s", line.K, line.Error)
		}
		return &line, nil
	}
}

// retryDelay resolves a 429's backoff: the exact millisecond hint from
// the body when present, else the whole-second Retry-After header, else
// a conservative default.
func retryDelay(header http.Header, line *fleet.ReplyLine) time.Duration {
	if line != nil && line.RetryAfterMs > 0 {
		return time.Duration(line.RetryAfterMs) * time.Millisecond
	}
	if secs, err := strconv.Atoi(header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 25 * time.Millisecond
}

// replayRemote streams a recorded trace to a live `roboads serve` fleet
// endpoint: it creates a session for the trace's robot, posts every
// frame over the streaming ingest — as binary frame records (wire
// "binary", the default) or trace NDJSON (wire "json") — prints the
// condition timeline from the streamed reply lines, and closes the
// session. The hosted session is built from the same robot profile as
// the local replay detector, so the remote timeline is bit-for-bit the
// local one, whichever wire carries the frames.
func replayRemote(input, remote, wire string) error {
	in := os.Stdin
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	reader, err := trace.NewReader(in)
	if err != nil {
		return err
	}
	header := reader.Header()
	base := strings.TrimSuffix(remote, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	info, err := createRemoteSession(base, header.Robot)
	if err != nil {
		return err
	}
	defer func() {
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+info.ID, nil)
		if err != nil {
			return
		}
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()

	// Frames ship as one body — the trace minus its header — in the
	// chosen wire format; the server steps them in order, batching
	// greedily, and streams a reply line each.
	var body bytes.Buffer
	var contentType string
	var encode func(*trace.Frame) error
	switch wire {
	case "", "binary":
		contentType = fleet.ContentTypeBinaryFrames
		encode = func(f *trace.Frame) error {
			body.Write(trace.AppendFrameRecord(nil, f))
			return nil
		}
	case "json":
		contentType = "application/x-ndjson"
		enc := json.NewEncoder(&body)
		encode = func(f *trace.Frame) error { return enc.Encode(f) }
	default:
		return fmt.Errorf("unknown wire format %q (want binary|json)", wire)
	}
	frames := 0
	for {
		frame, err := reader.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if err := encode(frame); err != nil {
			return err
		}
		frames++
	}
	resp, err := http.Post(base+"/v1/sessions/"+info.ID+"/frames", contentType, &body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote frames: status %d", resp.StatusCode)
	}

	replayed, prev := 0, ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var line fleet.ReplyLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("remote reply: %w", err)
		}
		if line.Error != "" || line.Report == nil {
			return fmt.Errorf("remote frame %d: %s", line.K, line.Error)
		}
		replayed++
		if line.Report.Condition != prev {
			cond := detect.CodeString(wireCondition(line.Report.Condition))
			fmt.Printf("k=%-4d %-8s mode=%s\n", line.Report.K, cond, line.Report.Mode)
			prev = line.Report.Condition
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if replayed != frames {
		return fmt.Errorf("remote replay: sent %d frames, got %d reports", frames, replayed)
	}
	fmt.Fprintf(os.Stderr, "replayed %d iterations remotely (session %s on %s)\n", replayed, info.ID, base)
	return nil
}

func createRemoteSession(base, robot string) (fleet.SessionInfo, error) {
	body, err := json.Marshal(fleet.CreateRequest{Robot: robot})
	if err != nil {
		return fleet.SessionInfo{}, err
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return fleet.SessionInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fleet.SessionInfo{}, fmt.Errorf("create remote session: status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var info fleet.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return fleet.SessionInfo{}, err
	}
	return info, nil
}
