package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"roboads/client"
	"roboads/internal/detect"
	"roboads/internal/fleet"
	"roboads/internal/trace"
)

// wireCondition parses a canonical condition string ("S0/A0",
// "S{ips,lidar}/A1") back into a detect.Condition, so the remote
// timeline renders in the same Table III code notation as local replay
// and the two outputs diff clean.
func wireCondition(s string) detect.Condition {
	var c detect.Condition
	sensors, actuator, ok := strings.Cut(s, "/")
	if !ok {
		return c
	}
	if rest, found := strings.CutPrefix(sensors, "S{"); found {
		c.Sensors = strings.Split(strings.TrimSuffix(rest, "}"), ",")
	}
	c.Actuator = actuator == "A1"
	return c
}

// stepRemote posts one frame to /step via the client package, which
// absorbs backpressure with the server's exact millisecond hint. A
// frame-level error in the reply surfaces as a Go error here.
func stepRemote(base, id string, frame *trace.Frame) (*fleet.ReplyLine, error) {
	line, err := client.New(base).Step(context.Background(), id, frame)
	if err != nil {
		return nil, err
	}
	if line.Error != "" {
		return nil, fmt.Errorf("frame %d: %s", line.K, line.Error)
	}
	return &line, nil
}

func createRemoteSession(base, robot string) (fleet.SessionInfo, error) {
	return client.New(base).Create(context.Background(), fleet.CreateRequest{Robot: robot})
}

// replayRemote streams a recorded trace to a live `roboads serve` fleet
// endpoint (or a `roboads route` front): it creates a session for the
// trace's robot, posts every frame over the streaming ingest — as
// binary frame records (wire "binary", the default) or trace NDJSON
// (wire "json") — prints the condition timeline from the streamed reply
// lines, and closes the session. The hosted session is built from the
// same robot profile as the local replay detector, so the remote
// timeline is bit-for-bit the local one, whichever wire carries the
// frames.
func replayRemote(input, remote, wire string) error {
	in := os.Stdin
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	reader, err := trace.NewReader(in)
	if err != nil {
		return err
	}
	header := reader.Header()

	var binary bool
	switch wire {
	case "", "binary":
		binary = true
	case "json":
		binary = false
	default:
		return fmt.Errorf("unknown wire format %q (want binary|json)", wire)
	}

	ctx := context.Background()
	c := client.New(remote)
	info, err := c.Create(ctx, fleet.CreateRequest{Robot: header.Robot})
	if err != nil {
		return err
	}
	defer c.Delete(context.Background(), info.ID)

	// Read the whole trace up front, then stream it while consuming the
	// reply lines: the sender goroutine keeps the ingest fed, and the
	// reply loop below applies backpressure naturally.
	var frames []*trace.Frame
	for {
		frame, err := reader.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		frames = append(frames, frame)
	}

	stream, err := c.Stream(ctx, info.ID, binary)
	if err != nil {
		return err
	}
	defer stream.Close()
	sendErr := make(chan error, 1)
	go func() {
		for _, frame := range frames {
			if err := stream.Send(frame); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- stream.CloseSend()
	}()

	replayed, prev := 0, ""
	for {
		line, err := stream.Recv()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("remote reply: %w", err)
		}
		if line.Error != "" || line.Report == nil {
			return fmt.Errorf("remote frame %d: %s", line.K, line.Error)
		}
		replayed++
		if line.Report.Condition != prev {
			cond := detect.CodeString(wireCondition(line.Report.Condition))
			fmt.Printf("k=%-4d %-8s mode=%s\n", line.Report.K, cond, line.Report.Mode)
			prev = line.Report.Condition
		}
	}
	if err := <-sendErr; err != nil {
		return err
	}
	if replayed != len(frames) {
		return fmt.Errorf("remote replay: sent %d frames, got %d reports", len(frames), replayed)
	}
	fmt.Fprintf(os.Stderr, "replayed %d iterations remotely (session %s on %s)\n", replayed, info.ID, c.Base())
	return nil
}
