package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"roboads/internal/detect"
	"roboads/internal/fleet"
	"roboads/internal/trace"
)

// wireCondition parses a canonical condition string ("S0/A0",
// "S{ips,lidar}/A1") back into a detect.Condition, so the remote
// timeline renders in the same Table III code notation as local replay
// and the two outputs diff clean.
func wireCondition(s string) detect.Condition {
	var c detect.Condition
	sensors, actuator, ok := strings.Cut(s, "/")
	if !ok {
		return c
	}
	if rest, found := strings.CutPrefix(sensors, "S{"); found {
		c.Sensors = strings.Split(strings.TrimSuffix(rest, "}"), ",")
	}
	c.Actuator = actuator == "A1"
	return c
}

// replayRemote streams a recorded trace to a live `roboads serve` fleet
// endpoint: it creates a session for the trace's robot, posts every
// frame over the NDJSON ingest, prints the condition timeline from the
// streamed reply lines, and closes the session. The hosted session is
// built from the same robot profile as the local replay detector, so the
// remote timeline is bit-for-bit the local one.
func replayRemote(input, remote string) error {
	in := os.Stdin
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	reader, err := trace.NewReader(in)
	if err != nil {
		return err
	}
	header := reader.Header()
	base := strings.TrimSuffix(remote, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	info, err := createRemoteSession(base, header.Robot)
	if err != nil {
		return err
	}
	defer func() {
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+info.ID, nil)
		if err != nil {
			return
		}
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()

	// Frames ship as one NDJSON body — the trace minus its header line;
	// the server steps them in order and streams a reply line each.
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	frames := 0
	for {
		frame, err := reader.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if err := enc.Encode(frame); err != nil {
			return err
		}
		frames++
	}
	resp, err := http.Post(base+"/v1/sessions/"+info.ID+"/frames", "application/x-ndjson", &body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote frames: status %d", resp.StatusCode)
	}

	replayed, prev := 0, ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var line fleet.ReplyLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("remote reply: %w", err)
		}
		if line.Error != "" || line.Report == nil {
			return fmt.Errorf("remote frame %d: %s", line.K, line.Error)
		}
		replayed++
		if line.Report.Condition != prev {
			cond := detect.CodeString(wireCondition(line.Report.Condition))
			fmt.Printf("k=%-4d %-8s mode=%s\n", line.Report.K, cond, line.Report.Mode)
			prev = line.Report.Condition
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if replayed != frames {
		return fmt.Errorf("remote replay: sent %d frames, got %d reports", frames, replayed)
	}
	fmt.Fprintf(os.Stderr, "replayed %d iterations remotely (session %s on %s)\n", replayed, info.ID, base)
	return nil
}

func createRemoteSession(base, robot string) (fleet.SessionInfo, error) {
	body, err := json.Marshal(fleet.CreateRequest{Robot: robot})
	if err != nil {
		return fleet.SessionInfo{}, err
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return fleet.SessionInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fleet.SessionInfo{}, fmt.Errorf("create remote session: status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var info fleet.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return fleet.SessionInfo{}, err
	}
	return info, nil
}
