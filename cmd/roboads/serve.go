package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"os"
	"time"

	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/eval"
	"roboads/internal/sim"
	"roboads/internal/telemetry"
)

// serveOptions configures the live telemetry server.
type serveOptions struct {
	addr       string
	scenarioID int
	seed       int64
	workers    int
	// missions bounds the number of missions run back to back; 0 loops
	// until the context is cancelled. Each mission uses seed+mission.
	missions int
	// interval paces the control loop (sleep per iteration); 0 runs at
	// full speed.
	interval time.Duration
	// onReady, when set, receives the bound listen address once the
	// HTTP surface is up (tests bind to 127.0.0.1:0).
	onReady func(net.Addr)
	// quiet suppresses the stderr event log.
	quiet bool
}

// serveScenario runs Table II missions in a loop with full telemetry
// attached and the HTTP surface (/metrics, /snapshot, /debug/pprof,
// /debug/vars) live on opts.addr. It returns when the context is
// cancelled or, with missions > 0, after that many missions.
func serveScenario(ctx context.Context, opts serveOptions) error {
	scenario, err := scenarioByID(opts.scenarioID)
	if err != nil {
		return err
	}

	topts := telemetry.Options{
		// The compact per-step Debug record would be noise at mission
		// rate; sample it 1-in-50 and leave Info (mode switches, alarm
		// edges, condition changes) unsampled.
		SampleEvery: map[slog.Level]int{slog.LevelDebug: 50},
	}
	if !opts.quiet {
		topts.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}
	tel := telemetry.New(topts)

	srv, addr, err := tel.Serve(opts.addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	if !opts.quiet {
		fmt.Fprintf(os.Stderr, "telemetry listening on http://%s (/metrics /snapshot /debug/pprof /debug/vars)\n", addr)
	}
	if opts.onReady != nil {
		opts.onReady(addr)
	}

	ecfg := core.DefaultEngineConfig()
	ecfg.Workers = opts.workers
	ecfg.Observer = tel
	cfg := detect.DefaultConfig()
	cfg.Observer = tel

	for mission := 0; opts.missions == 0 || mission < opts.missions; mission++ {
		if ctx.Err() != nil {
			return nil
		}
		setup, err := sim.NewKhepera(sim.LabMission(), &scenario, opts.seed+int64(mission))
		if err != nil {
			return err
		}
		det, err := eval.KheperaDetectorWith(ecfg)(setup, cfg)
		if err != nil {
			return err
		}
		for i := 0; i < eval.MaxIterations; i++ {
			if ctx.Err() != nil {
				return nil
			}
			step, err := setup.Sim.Step()
			if err != nil {
				break // mission over
			}
			if _, err := det.Step(step.UPlanned, step.Readings); err != nil {
				return err
			}
			if step.Done {
				break
			}
			if opts.interval > 0 {
				select {
				case <-ctx.Done():
					return nil
				case <-time.After(opts.interval):
				}
			}
		}
	}
	return nil
}

// attachTelemetry starts a telemetry server for the run/replay
// subcommands' -telemetry flag. The returned shutdown func is a no-op
// when addr is empty (telemetry disabled, nil Telemetry).
func attachTelemetry(addr string) (*telemetry.Telemetry, func(), error) {
	if addr == "" {
		return nil, func() {}, nil
	}
	tel := telemetry.New(telemetry.Options{
		Logger:      slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo})),
		SampleEvery: map[slog.Level]int{slog.LevelDebug: 50},
	})
	srv, bound, err := tel.Serve(addr)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "telemetry listening on http://%s\n", bound)
	return tel, func() { srv.Close() }, nil
}
