package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/eval"
	"roboads/internal/fleet"
	"roboads/internal/sim"
	"roboads/internal/telemetry"
)

// serveOptions configures the live telemetry server.
type serveOptions struct {
	addr       string
	scenarioID int // negative: no local mission loop (fleet-only server)
	seed       int64
	workers    int
	// missions bounds the number of missions run back to back; 0 loops
	// until the context is cancelled. Each mission uses seed+mission.
	missions int
	// interval paces the control loop (sleep per iteration); 0 runs at
	// full speed.
	interval time.Duration
	// fleetIdle evicts fleet sessions idle this long; 0 defaults to
	// 5 minutes, negative disables eviction.
	fleetIdle time.Duration
	// fleetQueue bounds each session's frame queue (0: fleet default).
	fleetQueue int
	// fleetBatch coalesces up to this many same-profile sessions into
	// one blocked batched step per scheduling quantum (fleet
	// Config.Batching); 0 or 1 keeps scalar per-session stepping.
	// Reports are bit-for-bit identical either way.
	fleetBatch int
	// drain bounds the fleet drain on shutdown (0: 10 seconds).
	drain time.Duration
	// stateDir enables fleet durability: sessions snapshot their
	// detector state and WAL every accepted frame under this directory,
	// and a restarted server recovers them bit-for-bit. Empty disables
	// persistence (the frame hot path is then untouched).
	stateDir string
	// snapshotEvery is the automatic checkpoint cadence in frames
	// (fleet.Durability.SnapshotEvery; 0 = 256, negative = manual only).
	snapshotEvery int
	// fsyncEvery is the WAL fsync policy (fleet.Durability.FsyncEvery;
	// 0 and 1 = every frame, n > 1 = batched, negative = never).
	fsyncEvery int
	// commitWindow > 0 enables cross-session group commit
	// (fleet.Durability.CommitWindow): one fsync per window covers every
	// session's appends, and a frame is acknowledged only after the
	// group fsync covering it. Supersedes fsyncEvery.
	commitWindow time.Duration
	// trace enables frame-lifecycle tracing: per-stage latency
	// histograms in /metrics and reservoir-sampled span exemplars at
	// /v1/debug/trace. Off, the frame path does no span work at all.
	trace bool
	// follow starts the node as a replication follower of the primary at
	// this base URL: it tails the primary's WAL stream into its own
	// durable state (requires stateDir) and serves nothing — /readyz
	// stays 503 — until the primary goes silent past promoteAfter, at
	// which point it promotes and opens for traffic.
	follow string
	// ackPolicy is the primary's reply durability bar
	// (fleet.Config.AckPolicy): "primary" (default) acks after the local
	// fsync barrier, "follower" additionally waits for the connected
	// follower's replication ack. Ignored in -follow mode.
	ackPolicy string
	// ackTimeout bounds the follower-ack wait (0: fleet default 5s).
	ackTimeout time.Duration
	// promoteAfter is how long a follower tolerates primary silence
	// before promoting (0: 2s).
	promoteAfter time.Duration
	// onReady, when set, receives the bound listen address once the
	// HTTP surface is up (tests bind to 127.0.0.1:0).
	onReady func(net.Addr)
	// quiet suppresses the stderr event log.
	quiet bool
}

// serveScenario runs the monitor as a service: the fleet session API
// (/v1/sessions) and the telemetry surface (/metrics, /snapshot,
// /debug/pprof, /debug/vars) live on opts.addr, and — unless scenarioID
// is negative — Table II missions loop locally to keep the engine-level
// series moving. It returns when the context is cancelled or, with
// missions > 0, after that many missions; on the way out the fleet
// drains, so every accepted frame is answered before the process exits.
func serveScenario(ctx context.Context, opts serveOptions) error {
	topts := telemetry.Options{
		// The compact per-step Debug record would be noise at mission
		// rate; sample it 1-in-50 and leave Info (mode switches, alarm
		// edges, condition changes) unsampled.
		SampleEvery: map[slog.Level]int{slog.LevelDebug: 50},
	}
	if !opts.quiet {
		topts.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}
	tel := telemetry.New(topts)

	idle := opts.fleetIdle
	if idle == 0 {
		idle = 5 * time.Minute
	} else if idle < 0 {
		idle = 0
	}
	var tracer *telemetry.Tracer
	if opts.trace {
		tracer = telemetry.NewTracer(tel.Registry())
	}
	ackPolicy := opts.ackPolicy
	if opts.follow != "" {
		if opts.stateDir == "" {
			return fmt.Errorf("serve: -follow requires -state-dir (the follower replicates into durable state)")
		}
		// A follower's own acks gate nothing downstream; the follower-ack
		// bar only makes sense on the primary.
		ackPolicy = fleet.AckPrimary
	}
	mgr, err := fleet.NewManager(fleet.Config{
		QueueDepth:  opts.fleetQueue,
		Batching:    opts.fleetBatch,
		IdleTimeout: idle,
		Build:       fleet.DefaultBuilder(),
		Metrics:     tel.Registry(),
		Trace:       tracer,
		AckPolicy:   ackPolicy,
		AckTimeout:  opts.ackTimeout,
		Durability: fleet.Durability{
			Dir:           opts.stateDir,
			SnapshotEvery: opts.snapshotEvery,
			FsyncEvery:    opts.fsyncEvery,
			CommitWindow:  opts.commitWindow,
		},
	})
	if err != nil {
		return err
	}

	// The readiness gate: a normal node is ready the moment NewManager
	// returns (recovery has finished by then); a follower serves nothing
	// until it promotes. /readyz reflects the same gate, so a router
	// never places work on a node that would 503 it.
	var promoted atomic.Bool
	promoted.Store(opts.follow == "")
	ready := func() bool { return promoted.Load() && mgr.Ready() }
	healthz := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	readyz := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !ready() {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"node not ready","code":"not_ready","retryAfterMs":1000}`)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	srv, addr, err := tel.ServeWith(opts.addr, map[string]http.Handler{
		"/v1/":         fleet.GatedHandler(mgr.Handler(), ready),
		"GET /healthz": healthz,
		"GET /readyz":  readyz,
	})
	if err != nil {
		mgr.Shutdown(context.Background())
		return err
	}
	defer srv.Close()
	// Drain before the listener dies: the fleet stops accepting frames,
	// answers everything already accepted, then in-flight HTTP streams
	// finish under srv.Shutdown. Runs before the deferred srv.Close.
	defer func() {
		drain := opts.drain
		if drain <= 0 {
			drain = 10 * time.Second
		}
		dctx, dcancel := context.WithTimeout(context.Background(), drain)
		defer dcancel()
		mgr.Shutdown(dctx)
		srv.Shutdown(dctx)
	}()
	if !opts.quiet {
		fmt.Fprintf(os.Stderr, "serving on http://%s (/v1/sessions /metrics /snapshot /debug/pprof /debug/vars)\n", addr)
	}
	if opts.onReady != nil {
		opts.onReady(addr)
	}

	if opts.follow != "" {
		go func() {
			f := &fleet.Follower{
				Manager:      mgr,
				Primary:      opts.follow,
				PromoteAfter: opts.promoteAfter,
			}
			if !opts.quiet {
				f.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
			}
			if err := f.Run(ctx); err == nil {
				// The primary is presumed dead; this node holds every
				// acked frame and takes over.
				promoted.Store(true)
				if !opts.quiet {
					fmt.Fprintf(os.Stderr, "promoted: serving (was following %s)\n", opts.follow)
				}
			}
		}()
	}

	if opts.scenarioID < 0 {
		<-ctx.Done()
		return nil
	}
	scenario, err := scenarioByID(opts.scenarioID)
	if err != nil {
		return err
	}

	ecfg := core.DefaultEngineConfig()
	ecfg.Workers = opts.workers
	ecfg.Observer = tel
	cfg := detect.DefaultConfig()
	cfg.Observer = tel

	for mission := 0; opts.missions == 0 || mission < opts.missions; mission++ {
		if ctx.Err() != nil {
			return nil
		}
		setup, err := sim.NewKhepera(sim.LabMission(), &scenario, opts.seed+int64(mission))
		if err != nil {
			return err
		}
		det, err := eval.KheperaDetectorWith(ecfg)(setup, cfg)
		if err != nil {
			return err
		}
		for i := 0; i < eval.MaxIterations; i++ {
			if ctx.Err() != nil {
				return nil
			}
			step, err := setup.Sim.Step()
			if err != nil {
				break // mission over
			}
			if _, err := det.Step(step.UPlanned, step.Readings); err != nil {
				return err
			}
			if step.Done {
				break
			}
			if opts.interval > 0 {
				select {
				case <-ctx.Done():
					return nil
				case <-time.After(opts.interval):
				}
			}
		}
	}
	return nil
}

// attachTelemetry starts a telemetry server for the run/replay
// subcommands' -telemetry flag. The returned shutdown func is a no-op
// when addr is empty (telemetry disabled, nil Telemetry).
func attachTelemetry(addr string) (*telemetry.Telemetry, func(), error) {
	if addr == "" {
		return nil, func() {}, nil
	}
	tel := telemetry.New(telemetry.Options{
		Logger:      slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo})),
		SampleEvery: map[slog.Level]int{slog.LevelDebug: 50},
	})
	srv, bound, err := tel.Serve(addr)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "telemetry listening on http://%s\n", bound)
	return tel, func() { srv.Close() }, nil
}
