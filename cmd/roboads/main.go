// Command roboads regenerates every table and figure of the RoboADS
// paper's evaluation (§V) and runs individual attack scenarios.
//
// Usage:
//
//	roboads <subcommand> [flags]
//
// Subcommands:
//
//	run      -scenario N [-seed S]   run one Table II scenario, print the timeline
//	table2   [-trials N] [-seed S]   reproduce Table II (detection results)
//	table3                           print the Table III mode definitions
//	table4   [-seed S]               reproduce Table IV (anomaly variance vs sensors)
//	fig6     [-seed S]               emit the Fig. 6 raw-output series as TSV
//	fig7     [-plot a|b|c|d] [-trials N] [-seed S]
//	                                 reproduce the Fig. 7 ROC / F1 sweeps
//	tamiya   [-trials N] [-seed S]   reproduce the §V-D RC-car results
//	linear   [-trials N] [-seed S]   reproduce the §V-G linear-baseline comparison
//	evasive  [-seed S]               reproduce the §V-H stealthy-attack sweeps
//	scenario gen|list|run [flags]    adversarial scenario engine: generate or
//	                                 list a DSL suite, or run one through the
//	                                 detector and append a BENCH_quality.json
//	                                 leaderboard record
//	related  [-trials N] [-seed S]   compare against the §II-C detector families
//	quality  [-seed S]               §V-E sensor-quality sweep
//	calibrate [-trials N] [-seed S]  auto-select decision parameters (§V-F as a tool)
//	report   [-o FILE] [-trials N]   regenerate the full markdown reproduction report
//	record   -scenario N [-o FILE]   record a mission's monitor inputs as a trace
//	replay   [-i FILE] [-remote A]   replay a trace through a fresh detector,
//	                                 or stream it to a live serve fleet endpoint
//	serve    [-addr A] [-scenario N] host the fleet session API (/v1/sessions)
//	                                 with live telemetry (/metrics, /snapshot,
//	                                 /debug/pprof); -scenario -1 skips the
//	                                 local mission loop; -follow URL starts
//	                                 the node as a replication follower
//	route    -nodes A,B,C [-addr A]  front N serve nodes as one fleet:
//	                                 consistent-hash placement, failover,
//	                                 migration redirect chasing
//	all      [-trials N] [-seed S]   run everything above (except fig6 TSV)
//
// run and replay also accept -telemetry ADDR to expose the same HTTP
// surface for the duration of the command.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"roboads/internal/attack"
	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/eval"
	"roboads/internal/sim"
	"roboads/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "roboads:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return errors.New("missing subcommand")
	}
	sub, rest := args[0], args[1:]

	// The scenario subcommand has its own verb structure (gen/list/run)
	// and flag set; dispatch it before the shared flags parse.
	if sub == "scenario" {
		return scenarioCmd(rest)
	}

	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	trials := fs.Int("trials", 1, "missions per scenario")
	seed := fs.Int64("seed", 42, "base random seed")
	scenarioID := fs.Int("scenario", 4, "Table II scenario number (run/record)")
	plot := fs.String("plot", "a", "fig7 plot: a|b|c|d")
	output := fs.String("o", "", "output file (record; default stdout)")
	input := fs.String("i", "", "input trace file (replay; default stdin)")
	remote := fs.String("remote", "", "replay against a live `roboads serve` fleet endpoint (e.g. 127.0.0.1:8080) instead of an in-process detector")
	workers := fs.Int("workers", 0, "mode-bank worker goroutines (run/replay/serve): 0 = GOMAXPROCS, <=1 sequential; output is identical either way")
	telemetryAddr := fs.String("telemetry", "", "serve /metrics, /snapshot and /debug/pprof on this address during run/replay (e.g. 127.0.0.1:8080)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (serve)")
	missions := fs.Int("missions", 0, "missions to run back to back (serve); 0 = loop until interrupted")
	interval := fs.Duration("interval", 0, "sleep per control iteration (serve); 0 = full speed")
	fleetIdle := fs.Duration("fleet-idle", 0, "evict fleet sessions idle this long (serve); 0 = 5m, negative = never")
	fleetBatch := fs.Int("fleet-batch", 0, "coalesce up to this many same-profile fleet sessions into one blocked batched step per quantum (serve); 0 or 1 = scalar stepping, reports identical either way")
	stateDir := fs.String("state-dir", "", "persist fleet sessions under this directory (serve); empty = no persistence")
	snapshotEvery := fs.Int("snapshot-every", 0, "frames between automatic session checkpoints (serve); 0 = 256, negative = manual only")
	fsyncEvery := fs.Int("fsync-every", 0, "WAL fsync cadence in frames (serve); 0 or 1 = every frame, negative = never")
	commitWindow := fs.Duration("commit-window", 0, "group-commit window (serve); >0 amortizes one fsync over all sessions' WAL appends per window (supersedes -fsync-every; frames still ack only after the covering fsync)")
	traceFrames := fs.Bool("trace", true, "frame-lifecycle tracing (serve): per-stage latency histograms in /metrics and span exemplars at /v1/debug/trace; false = zero span work on the frame path")
	wire := fs.String("wire", "binary", "frame wire format for replay -remote: binary|json (replies are identical either way)")
	binary := fs.Bool("binary", false, "record in the binary trace format (smaller, faster to replay; replay auto-detects either)")
	follow := fs.String("follow", "", "start as a replication follower of the primary at this base URL (serve); requires -state-dir, serves nothing until the primary goes silent past -promote-after")
	ackPolicy := fs.String("ack-policy", "primary", "reply durability bar (serve): primary = ack after local fsync, follower = additionally wait for the connected follower's replication ack")
	ackTimeout := fs.Duration("ack-timeout", 0, "bound on the follower-ack wait (serve); 0 = 5s")
	promoteAfter := fs.Duration("promote-after", 0, "primary silence a follower tolerates before promoting (serve -follow); 0 = 2s")
	nodes := fs.String("nodes", "", "comma-separated fleet node base URLs (route), e.g. 127.0.0.1:8081,127.0.0.1:8082")
	healthInterval := fs.Duration("health-interval", 0, "node /readyz poll cadence (route); 0 = 500ms")
	if err := fs.Parse(rest); err != nil {
		return err
	}

	switch sub {
	case "run":
		return runScenario(*scenarioID, *seed, *workers, *telemetryAddr)
	case "serve":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return serveScenario(ctx, serveOptions{
			addr:       *addr,
			scenarioID: *scenarioID,
			seed:       *seed,
			workers:    *workers,
			missions:   *missions,
			interval:   *interval,
			fleetIdle:  *fleetIdle,
			fleetBatch: *fleetBatch,
			trace:      *traceFrames,

			stateDir:      *stateDir,
			snapshotEvery: *snapshotEvery,
			fsyncEvery:    *fsyncEvery,
			commitWindow:  *commitWindow,

			follow:       *follow,
			ackPolicy:    *ackPolicy,
			ackTimeout:   *ackTimeout,
			promoteAfter: *promoteAfter,
		})
	case "route":
		if *nodes == "" {
			return errors.New("route: -nodes is required (comma-separated node base URLs)")
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		var list []string
		for _, n := range strings.Split(*nodes, ",") {
			if n = strings.TrimSpace(n); n != "" {
				list = append(list, n)
			}
		}
		return runRoute(ctx, routeOptions{
			addr:           *addr,
			nodes:          list,
			healthInterval: *healthInterval,
		})
	case "table2":
		result, err := eval.Table2(*trials, *seed)
		if err != nil {
			return err
		}
		result.Write(os.Stdout)
	case "table3":
		printTable3()
	case "table4":
		result, err := eval.Table4(*seed)
		if err != nil {
			return err
		}
		result.Write(os.Stdout)
		if err := result.Shape(); err != nil {
			return err
		}
		fmt.Println("shape check: OK")
	case "fig6":
		result, err := eval.Fig6(*seed)
		if err != nil {
			return err
		}
		result.Write(os.Stdout)
	case "fig7":
		return runFig7(*plot, *trials, *seed)
	case "tamiya":
		result, err := eval.Tamiya(*trials, *seed)
		if err != nil {
			return err
		}
		result.Write(os.Stdout)
	case "linear":
		result, err := eval.LinearBench(*trials, *seed)
		if err != nil {
			return err
		}
		result.Write(os.Stdout)
	case "evasive":
		result, err := eval.Evasive(*seed)
		if err != nil {
			return err
		}
		result.Write(os.Stdout)
	case "quality":
		result, err := eval.SensorQuality(*seed)
		if err != nil {
			return err
		}
		result.Write(os.Stdout)
		if err := result.Shape(); err != nil {
			return err
		}
		fmt.Println("shape check: OK")
	case "calibrate":
		runs, err := eval.Fig7Workload(*trials, *seed)
		if err != nil {
			return err
		}
		cal, err := eval.Calibrate(runs)
		if err != nil {
			return err
		}
		fmt.Printf("calibrated decision parameters (validation F1 sensor %.4f / actuator %.4f):\n", cal.SensorF1, cal.ActuatorF1)
		fmt.Printf("  sensor:   alpha=%g  c/w=%d/%d\n", cal.Config.SensorAlpha, cal.Config.SensorCriteria, cal.Config.SensorWindow)
		fmt.Printf("  actuator: alpha=%g  c/w=%d/%d\n", cal.Config.ActuatorAlpha, cal.Config.ActuatorCriteria, cal.Config.ActuatorWindow)
		fmt.Println("paper selects: sensor alpha=0.005 c/w=2/2, actuator alpha=0.05 c/w=3/6")
	case "report":
		out := os.Stdout
		if *output != "" {
			f, err := os.Create(*output)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		return eval.Report(out, *trials, *seed)
	case "record":
		return recordTrace(*scenarioID, *seed, *output, *binary)
	case "replay":
		if *remote != "" {
			return replayRemote(*input, *remote, *wire)
		}
		return replayTrace(*input, *workers, *telemetryAddr)
	case "related":
		result, err := eval.RelatedWork(*trials, *seed)
		if err != nil {
			return err
		}
		result.Write(os.Stdout)
	case "all":
		return runAll(*trials, *seed)
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", sub)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: roboads <run|table2|table3|table4|fig6|fig7|tamiya|linear|evasive|scenario|related|quality|calibrate|report|record|replay|serve|route|all> [flags]`)
}

func runScenario(id int, seed int64, workers int, telemetryAddr string) error {
	scenario, err := scenarioByID(id)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %v — %s\n", &scenario, scenario.Description)

	tel, shutdown, err := attachTelemetry(telemetryAddr)
	if err != nil {
		return err
	}
	defer shutdown()

	ecfg := core.DefaultEngineConfig()
	ecfg.Workers = workers
	cfg := detect.DefaultConfig()
	if tel != nil {
		ecfg.Observer = tel
		cfg.Observer = tel
	}
	run, err := eval.RunKheperaScenario(scenario, seed, cfg, eval.KheperaDetectorWith(ecfg))
	if err != nil {
		return err
	}
	// Timeline of condition changes.
	prev := ""
	for _, tr := range run.Trace {
		cond := detect.CodeString(tr.Decision.Condition)
		if cond != prev {
			fmt.Printf("t=%5.1fs  %-8s mode=%s\n", float64(tr.K)*run.Dt, cond, tr.Decision.Mode)
			prev = cond
		}
	}
	sc := run.SensorConfusion()
	ac := run.ActuatorConfusion()
	fmt.Printf("\nsensor:   %v\nactuator: %v\n", sc, ac)
	for target, d := range run.SensorDelays() {
		fmt.Printf("delay[%s] = %.2fs\n", target, d.Seconds(run.Dt))
	}
	if d, ok := run.ActuatorDelay(); ok {
		fmt.Printf("delay[actuator] = %.2fs\n", d.Seconds(run.Dt))
	}
	return nil
}

func printTable3() {
	fmt.Println("Table III — sensor and actuator mode definitions")
	rows := []struct{ code, condition string }{
		{"S0", "under no sensor misbehavior"},
		{"S1", "under IPS sensor misbehavior"},
		{"S2", "under wheel encoder sensor misbehavior"},
		{"S3", "under LiDAR sensor misbehavior"},
		{"S4", "under wheel encoder and LiDAR sensor misbehavior"},
		{"S5", "under IPS and LiDAR sensor misbehavior"},
		{"S6", "under IPS and wheel encoder sensor misbehavior"},
		{"A0", "under no actuator misbehavior"},
		{"A1", "under actuator misbehavior"},
	}
	for _, r := range rows {
		fmt.Printf("  %-4s %s\n", r.code, r.condition)
	}
}

func runFig7(plot string, trials int, seed int64) error {
	plot = strings.ToLower(plot)
	switch plot {
	case "a", "b", "c", "d":
	default:
		return fmt.Errorf("unknown fig7 plot %q (want a|b|c|d)", plot)
	}
	runs, err := eval.Fig7Workload(trials, seed)
	if err != nil {
		return err
	}
	switch plot {
	case "a":
		result, err := eval.Fig7ROC(runs, true)
		if err != nil {
			return err
		}
		result.Write(os.Stdout)
	case "b":
		result, err := eval.Fig7ROC(runs, false)
		if err != nil {
			return err
		}
		result.Write(os.Stdout)
	case "c":
		result, err := eval.Fig7F1(runs, true)
		if err != nil {
			return err
		}
		result.Write(os.Stdout)
		best := result.Best()
		fmt.Printf("best: w=%d c=%d F1=%.4f (paper selects c/w=2/2)\n", best.W, best.C, best.F1)
	case "d":
		result, err := eval.Fig7F1(runs, false)
		if err != nil {
			return err
		}
		result.Write(os.Stdout)
		best := result.Best()
		fmt.Printf("best: w=%d c=%d F1=%.4f (paper selects c/w=3/6)\n", best.W, best.C, best.F1)
	}
	return nil
}

func runAll(trials int, seed int64) error {
	fmt.Println("=== Table II ===")
	t2, err := eval.Table2(trials, seed)
	if err != nil {
		return err
	}
	t2.Write(os.Stdout)

	fmt.Println("\n=== Table III ===")
	printTable3()

	fmt.Println("\n=== Table IV ===")
	t4, err := eval.Table4(seed)
	if err != nil {
		return err
	}
	t4.Write(os.Stdout)
	if err := t4.Shape(); err != nil {
		return err
	}

	fmt.Println("\n=== Fig 7 ===")
	runs, err := eval.Fig7Workload(trials, seed)
	if err != nil {
		return err
	}
	for _, side := range []bool{true, false} {
		roc, err := eval.Fig7ROC(runs, side)
		if err != nil {
			return err
		}
		for _, curve := range roc.Curves {
			fmt.Printf("%s ROC c/w=%d/%d: AUC %.4f\n", roc.Side, curve.C, curve.W, curve.AUC)
		}
		f1, err := eval.Fig7F1(runs, side)
		if err != nil {
			return err
		}
		best := f1.Best()
		fmt.Printf("%s best F1 %.4f at w=%d c=%d\n", f1.Side, best.F1, best.W, best.C)
	}

	fmt.Println("\n=== Tamiya (§V-D) ===")
	tm, err := eval.Tamiya(trials, seed)
	if err != nil {
		return err
	}
	tm.Write(os.Stdout)

	fmt.Println("\n=== Linear baseline (§V-G) ===")
	lb, err := eval.LinearBench(trials, seed)
	if err != nil {
		return err
	}
	lb.Write(os.Stdout)

	fmt.Println("\n=== Evasive attacks (§V-H) ===")
	ev, err := eval.Evasive(seed)
	if err != nil {
		return err
	}
	ev.Write(os.Stdout)

	fmt.Println("\n=== Related-work comparison (§II-C) ===")
	rel, err := eval.RelatedWork(trials, seed)
	if err != nil {
		return err
	}
	rel.Write(os.Stdout)
	return nil
}

// scenarioByID resolves 0 (clean) or 1..11 (Table II).
func scenarioByID(id int) (attack.Scenario, error) {
	switch {
	case id == 0:
		return attack.CleanScenario(), nil
	case id >= 1 && id <= 11:
		return attack.KheperaScenarios()[id-1], nil
	default:
		return attack.Scenario{}, fmt.Errorf("scenario %d outside 0..11", id)
	}
}

// recordTrace runs a Khepera mission and writes its monitor inputs as a
// trace: JSON lines by default, the DESIGN.md §12 binary framing with
// -binary. Replay negotiates by header, so either file replays the same.
func recordTrace(scenarioID int, seed int64, output string, binary bool) error {
	scenario, err := scenarioByID(scenarioID)
	if err != nil {
		return err
	}
	setup, err := sim.NewKhepera(sim.LabMission(), &scenario, seed)
	if err != nil {
		return err
	}

	out := os.Stdout
	if output != "" {
		f, err := os.Create(output)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	names := make([]string, len(setup.Suite))
	for i, s := range setup.Suite {
		names[i] = s.Name()
	}
	header := trace.Header{
		Robot:   "khepera",
		Dt:      sim.KheperaDt,
		Sensors: names,
	}
	recorder := trace.NewRecorder(out, header)
	if binary {
		recorder = trace.NewBinaryRecorder(out, header)
	}
	records, err := setup.Sim.Run(eval.MaxIterations)
	if err != nil {
		return err
	}
	for _, rec := range records {
		// Stamp frames with mission time so replay can reproduce the
		// recorded arrival cadence in the frame-gap histogram.
		tNanos := int64(float64(rec.K) * sim.KheperaDt * 1e9)
		if err := recorder.RecordAt(rec.K, tNanos, rec.UPlanned, rec.Readings); err != nil {
			return err
		}
	}
	if err := recorder.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded %d iterations of %v\n", len(records), &scenario)
	return nil
}

// replayTrace feeds a recorded Khepera trace through a fresh detector
// and prints the condition timeline.
func replayTrace(input string, workers int, telemetryAddr string) error {
	in := os.Stdin
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	// The detector needs the mission geometry for the LiDAR model; the
	// standard lab mission is the recording context for `record`.
	clean := attack.CleanScenario()
	setup, err := sim.NewKhepera(sim.LabMission(), &clean, 0)
	if err != nil {
		return err
	}
	tel, shutdown, err := attachTelemetry(telemetryAddr)
	if err != nil {
		return err
	}
	defer shutdown()
	ecfg := core.DefaultEngineConfig()
	ecfg.Workers = workers
	cfg := detect.DefaultConfig()
	if tel != nil {
		ecfg.Observer = tel
		cfg.Observer = tel
	}
	det, err := eval.KheperaDetectorWith(ecfg)(setup, cfg)
	if err != nil {
		return err
	}
	// With telemetry attached, recorded frame timestamps reproduce the
	// mission's arrival cadence in the frame-gap histogram.
	var observe func(*trace.Frame)
	if tel != nil {
		prev := int64(-1)
		observe = func(f *trace.Frame) {
			if prev >= 0 && f.TNanos > 0 {
				tel.FrameGap(f.TNanos - prev)
			}
			if f.TNanos > 0 {
				prev = f.TNanos
			}
		}
	}
	reports, err := trace.ReplayObserve(in, det, observe)
	if err != nil {
		return err
	}
	prev := ""
	for _, rep := range reports {
		cond := detect.CodeString(rep.Decision.Condition)
		if cond != prev {
			fmt.Printf("k=%-4d %-8s mode=%s\n", rep.Decision.Iteration, cond, rep.Decision.Mode)
			prev = cond
		}
	}
	fmt.Fprintf(os.Stderr, "replayed %d iterations\n", len(reports))
	return nil
}
