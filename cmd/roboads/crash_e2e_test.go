package main

import (
	"cmp"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roboads/internal/fleet"
	"roboads/internal/trace"
)

// TestServeHelperProcess is not a test: it is the child body of the
// crash-recovery e2e. The parent re-execs this test binary with
// ROBOADS_SERVE_HELPER=1 to get a real separate process it can kill -9;
// in a normal test run the env var is unset and this skips immediately.
func TestServeHelperProcess(t *testing.T) {
	if os.Getenv("ROBOADS_SERVE_HELPER") != "1" {
		t.Skip("helper process body, not a test")
	}
	snapEvery, _ := strconv.Atoi(os.Getenv("ROBOADS_SNAPSHOT_EVERY"))
	commitWindow, _ := time.ParseDuration(os.Getenv("ROBOADS_COMMIT_WINDOW"))
	promoteAfter, _ := time.ParseDuration(os.Getenv("ROBOADS_PROMOTE_AFTER"))
	addrFile := os.Getenv("ROBOADS_ADDR_FILE")
	err := serveScenario(context.Background(), serveOptions{
		addr:          "127.0.0.1:0",
		scenarioID:    -1,
		quiet:         os.Getenv("ROBOADS_HELPER_VERBOSE") != "1",
		stateDir:      os.Getenv("ROBOADS_STATE_DIR"),
		snapshotEvery: snapEvery,
		commitWindow:  commitWindow,
		follow:        os.Getenv("ROBOADS_FOLLOW"),
		ackPolicy:     cmp.Or(os.Getenv("ROBOADS_ACK_POLICY"), "primary"),
		promoteAfter:  promoteAfter,
		onReady: func(a net.Addr) {
			// Atomic publish: the parent polls for this file.
			tmp := addrFile + ".tmp"
			os.WriteFile(tmp, []byte(a.String()), 0o644)
			os.Rename(tmp, addrFile)
		},
	})
	// Reached only if the context ends or serve fails — the parent
	// kills this process, so any exit here is a startup failure.
	t.Fatalf("helper serve exited: %v", err)
}

// spawnServeHelper starts the helper process and waits for its bound
// address. The returned process is running until explicitly killed.
// extraEnv entries ("KEY=value") layer additional serve options on —
// ROBOADS_FOLLOW, ROBOADS_ACK_POLICY, ROBOADS_PROMOTE_AFTER.
func spawnServeHelper(t *testing.T, stateDir, addrFile string, snapshotEvery int, commitWindow time.Duration, extraEnv ...string) (*exec.Cmd, string) {
	t.Helper()
	os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-test.run", "TestServeHelperProcess$")
	cmd.Env = append(os.Environ(),
		"ROBOADS_SERVE_HELPER=1",
		"ROBOADS_STATE_DIR="+stateDir,
		"ROBOADS_ADDR_FILE="+addrFile,
		"ROBOADS_SNAPSHOT_EVERY="+strconv.Itoa(snapshotEvery),
		"ROBOADS_COMMIT_WINDOW="+commitWindow.String(),
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn helper: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return cmd, string(data)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("helper never published its address")
	return nil, ""
}

// checkpointRemote forces a snapshot and returns its applied count.
func checkpointRemote(base, id string) (fleet.CheckpointInfo, error) {
	resp, err := http.Post(base+"/v1/sessions/"+id+"/checkpoint", "application/json", nil)
	if err != nil {
		return fleet.CheckpointInfo{}, err
	}
	defer resp.Body.Close()
	var info fleet.CheckpointInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return fleet.CheckpointInfo{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return fleet.CheckpointInfo{}, fmt.Errorf("checkpoint %s: HTTP %d", id, resp.StatusCode)
	}
	return info, nil
}

// TestServeCrashRecovery is the durability acceptance test: a live
// `roboads serve -state-dir` process is killed with SIGKILL mid-stream
// across many sessions, restarted on the same state directory, and every
// session's continued report stream must be bit-for-bit the uninterrupted
// in-process run — every frame the dead server acknowledged is there,
// and the tail resumes at exactly the recovered frame count.
//
// Session count defaults to 4; `make crashsoak` raises it to 32 via
// ROBOADS_CRASH_SESSIONS and runs under -race.
//
// The test runs twice: with per-frame fsync, and with group commit
// (-commit-window), whose wider crash window (unacked frames in a
// pending commit batch die with the process) must still never lose an
// acknowledged frame: acked ≤ recovered ≤ sent holds in both modes.
func TestServeCrashRecovery(t *testing.T) {
	t.Run("fsync-per-frame", func(t *testing.T) { testServeCrashRecovery(t, 0) })
	t.Run("group-commit", func(t *testing.T) { testServeCrashRecovery(t, 2*time.Millisecond) })
}

func testServeCrashRecovery(t *testing.T, commitWindow time.Duration) {
	if testing.Short() {
		t.Skip("crash e2e in -short mode")
	}
	sessions := 4
	if env := os.Getenv("ROBOADS_CRASH_SESSIONS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			t.Fatalf("bad ROBOADS_CRASH_SESSIONS=%q", env)
		}
		sessions = n
	}
	const total = 90
	seeds := []int64{201, 202, 203, 204}
	frameSets := make([][]trace.Frame, len(seeds))
	references := make([][]fleet.WireReport, len(seeds))
	for i, seed := range seeds {
		frameSets[i] = recordedFrames(t, seed, total)
		references[i] = localWireReports(t, frameSets[i])
	}

	stateDir := filepath.Join(t.TempDir(), "state")
	addrFile := filepath.Join(t.TempDir(), "addr")
	// SnapshotEvery 32 < total frames, so recovery exercises both the
	// snapshot load and a non-empty WAL-tail replay.
	cmd1, addr1 := spawnServeHelper(t, stateDir, addrFile, 32, commitWindow)
	defer cmd1.Process.Kill()
	base1 := "http://" + addr1

	ids := make([]fleet.SessionInfo, sessions)
	for i := range ids {
		ids[i] = createFleetSession(t, base1, "khepera")
	}

	// Stream frames to every session concurrently; the main goroutine
	// SIGKILLs the server mid-flight. Replies received before the kill
	// are acknowledged frames — the recovery contract says none of them
	// may be lost.
	var progress atomic.Int64
	var wg sync.WaitGroup
	acked := make([][]fleet.WireReport, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			frames := frameSets[i%len(seeds)]
			for f := range frames {
				line, err := stepRemote(base1, ids[i].ID, &frames[f])
				if err != nil {
					return // server died mid-stream: expected
				}
				acked[i] = append(acked[i], *line.Report)
				progress.Add(1)
			}
		}(i)
	}
	// Kill once the fleet is mid-mission (past the first snapshot
	// cadence on average), without waiting for any clean boundary.
	killAt := int64(sessions) * 45
	for progress.Load() < killAt {
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd1.Process.Kill(); err != nil { // SIGKILL: no shutdown hooks run
		t.Fatalf("kill -9: %v", err)
	}
	wg.Wait()
	cmd1.Wait()

	// Restart on the same state directory.
	cmd2, addr2 := spawnServeHelper(t, stateDir, addrFile, 32, commitWindow)
	defer cmd2.Process.Kill()
	base2 := "http://" + addr2

	host, port, err := net.SplitHostPort(addr2)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := net.ResolveTCPAddr("tcp", net.JoinHostPort(host, port))
	if err != nil {
		t.Fatal(err)
	}
	if rec := metricValue(t, scrape(t, tcp, "/metrics"), "roboads_store_recovered_sessions"); rec != float64(sessions) {
		t.Fatalf("recovered_sessions = %g, want %d", rec, sessions)
	}

	for i := 0; i < sessions; i++ {
		id := ids[i].ID
		ref := references[i%len(seeds)]
		frames := frameSets[i%len(seeds)]

		// Every acknowledged reply must be a prefix of the reference.
		if n := len(acked[i]); !reflect.DeepEqual(acked[i], ref[:n]) {
			t.Fatalf("session %s: pre-crash replies diverged from reference", id)
		}
		// The checkpoint reports how far the recovered session got; the
		// reply-after-fsync contract requires it to cover every ack.
		ci, err := checkpointRemote(base2, id)
		if err != nil {
			t.Fatalf("session %s: %v", id, err)
		}
		if ci.FramesApplied < len(acked[i]) {
			t.Fatalf("session %s: recovered %d frames but %d were acknowledged",
				id, ci.FramesApplied, len(acked[i]))
		}
		if ci.FramesApplied > len(frames) {
			t.Fatalf("session %s: recovered %d frames, only %d were ever sent",
				id, ci.FramesApplied, len(frames))
		}
		// Resume from the recovered frame count: the continued stream
		// must be bit-for-bit the uninterrupted run's tail.
		for f := ci.FramesApplied; f < len(frames); f++ {
			line, err := stepRemote(base2, id, &frames[f])
			if err != nil {
				t.Fatalf("session %s resume frame %d: %v", id, f, err)
			}
			if !reflect.DeepEqual(*line.Report, ref[f]) {
				t.Fatalf("session %s: post-recovery report %d diverged from reference", id, f)
			}
		}
	}
	cmd2.Process.Kill()
	cmd2.Wait()
}
