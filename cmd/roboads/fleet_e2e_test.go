package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"roboads/internal/attack"
	"roboads/internal/fleet"
	"roboads/internal/mat"
	"roboads/internal/sim"
	"roboads/internal/trace"
)

// startFleetServer runs a fleet-only serveScenario and returns its bound
// address plus a stop func that cancels it and waits for the drain.
func startFleetServer(t *testing.T, opts serveOptions) (net.Addr, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	opts.scenarioID = -1
	opts.quiet = true
	opts.onReady = func(a net.Addr) { ready <- a }
	if opts.addr == "" {
		opts.addr = "127.0.0.1:0"
	}
	go func() { done <- serveScenario(ctx, opts) }()
	select {
	case addr := <-ready:
		return addr, func() error {
			cancel()
			select {
			case err := <-done:
				return err
			case <-time.After(30 * time.Second):
				return fmt.Errorf("serve did not stop after cancel")
			}
		}
	case err := <-done:
		cancel()
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("timed out waiting for serve to bind")
	}
	return nil, nil
}

// recordedFrames runs a clean Khepera mission and returns its first n
// frames.
func recordedFrames(t *testing.T, seed int64, n int) []trace.Frame {
	t.Helper()
	scenario := attack.CleanScenario()
	setup, err := sim.NewKhepera(sim.LabMission(), &scenario, seed)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]trace.Frame, 0, n)
	for len(frames) < n {
		rec, err := setup.Sim.Step()
		if err != nil {
			break
		}
		frame := trace.Frame{K: rec.K, U: rec.UPlanned, Readings: make(map[string][]float64, len(rec.Readings))}
		for name, z := range rec.Readings {
			frame.Readings[name] = z
		}
		frames = append(frames, frame)
		if rec.Done {
			break
		}
	}
	return frames
}

// localWireReports steps frames through the fleet's own builder
// in-process — the reference the live server must match bit-for-bit.
func localWireReports(t *testing.T, frames []trace.Frame) []fleet.WireReport {
	t.Helper()
	stepper, _, err := fleet.DefaultBuilder()(fleet.Spec{Robot: "khepera"})
	if err != nil {
		t.Fatal(err)
	}
	defer stepper.Close()
	var out []fleet.WireReport
	for _, frame := range frames {
		readings := make(map[string]mat.Vec, len(frame.Readings))
		for name, z := range frame.Readings {
			readings[name] = z
		}
		rep, err := stepper.StepContext(context.Background(), frame.U, readings)
		if err != nil {
			t.Fatalf("local step k=%d: %v", frame.K, err)
		}
		out = append(out, fleet.NewWireReport(rep))
	}
	// Round-trip through JSON once, as the remote reports did.
	buf, _ := json.Marshal(out)
	var wire []fleet.WireReport
	if err := json.Unmarshal(buf, &wire); err != nil {
		t.Fatal(err)
	}
	return wire
}

func createFleetSession(t *testing.T, base, robot string) fleet.SessionInfo {
	t.Helper()
	info, err := createRemoteSession(base, robot)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestServeFleetConcurrentSessions is the service acceptance test: a
// live `roboads serve` sustains 32 concurrent sessions whose streamed
// reports are bit-for-bit the in-process runs, /metrics carries the
// fleet gauges, and shutdown drains cleanly.
func TestServeFleetConcurrentSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak in -short mode")
	}
	const sessions = 32
	const perSession = 12
	seeds := []int64{101, 102, 103, 104}
	frameSets := make([][]trace.Frame, len(seeds))
	references := make([][]fleet.WireReport, len(seeds))
	for i, seed := range seeds {
		frameSets[i] = recordedFrames(t, seed, perSession)
		references[i] = localWireReports(t, frameSets[i])
	}

	addr, stop := startFleetServer(t, serveOptions{})
	base := "http://" + addr.String()

	ids := make([]fleet.SessionInfo, sessions)
	for i := range ids {
		ids[i] = createFleetSession(t, base, "khepera")
	}
	live := metricValue(t, scrape(t, addr, "/metrics"), fleet.MetricSessionsLive)
	if live != sessions {
		t.Fatalf("%s = %g, want %d", fleet.MetricSessionsLive, live, sessions)
	}

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	got := make([][]fleet.WireReport, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			frames := frameSets[i%len(seeds)]
			var body bytes.Buffer
			enc := json.NewEncoder(&body)
			for _, frame := range frames {
				enc.Encode(frame)
			}
			resp, err := http.Post(base+"/v1/sessions/"+ids[i].ID+"/frames", "application/x-ndjson", &body)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
			for sc.Scan() {
				var line fleet.ReplyLine
				if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
					errs[i] = err
					return
				}
				if line.Error != "" || line.Report == nil {
					errs[i] = fmt.Errorf("frame %d: %s", line.K, line.Error)
					return
				}
				got[i] = append(got[i], *line.Report)
			}
			errs[i] = sc.Err()
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], references[i%len(seeds)]) {
			t.Fatalf("session %d: remote reports diverged from in-process run", i)
		}
	}

	exposition := scrape(t, addr, "/metrics")
	if frames := metricValue(t, exposition, fleet.MetricFrames); frames < sessions*perSession {
		t.Fatalf("%s = %g, want >= %d", fleet.MetricFrames, frames, sessions*perSession)
	}
	for _, name := range []string{fleet.MetricSessionsLive, fleet.MetricQueueDepth,
		fleet.MetricEvictions, fleet.MetricRejectedFrames} {
		if !strings.Contains(exposition, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}

	if err := stop(); err != nil {
		t.Fatalf("serve shutdown: %v", err)
	}
}

// TestReplayRemoteRoundTrip records a short trace, serves a fleet, and
// replays the trace remotely; the client itself verifies one report per
// frame arrived.
func TestReplayRemoteRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("remote replay in -short mode")
	}
	frames := recordedFrames(t, 77, 25)
	path := filepath.Join(t.TempDir(), "mission.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(f, trace.Header{Robot: "khepera", Dt: sim.KheperaDt,
		Sensors: []string{"ips", "wheel-encoder", "lidar"}})
	for _, frame := range frames {
		readings := make(map[string]mat.Vec, len(frame.Readings))
		for name, z := range frame.Readings {
			readings[name] = z
		}
		if err := rec.Record(frame.K, frame.U, readings); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	addr, stop := startFleetServer(t, serveOptions{})
	// Both wire formats must round-trip; the binary wire is the default.
	for _, wire := range []string{"json", "binary"} {
		if err := replayRemote(path, addr.String(), wire); err != nil {
			t.Fatalf("replay -remote (%s wire): %v", wire, err)
		}
	}
	// The replayed session was deleted by the client; the fleet is empty.
	if live := metricValue(t, scrape(t, addr, "/metrics"), fleet.MetricSessionsLive); live != 0 {
		t.Fatalf("%s = %g after remote replay, want 0", fleet.MetricSessionsLive, live)
	}
	if err := stop(); err != nil {
		t.Fatalf("serve shutdown: %v", err)
	}
}
