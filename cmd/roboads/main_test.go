package main

import (
	"strings"
	"testing"
)

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	err := run([]string{"frobnicate"})
	if err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"table2", "-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunScenarioBounds(t *testing.T) {
	if err := run([]string{"run", "-scenario", "99"}); err == nil {
		t.Fatal("out-of-range scenario accepted")
	}
}

func TestRunFig7BadPlot(t *testing.T) {
	if err := run([]string{"fig7", "-plot", "z"}); err == nil {
		t.Fatal("bad plot letter accepted")
	}
}

func TestRunTable3(t *testing.T) {
	// Static output, no simulation involved.
	if err := run([]string{"table3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("mission run in -short mode")
	}
	if err := run([]string{"run", "-scenario", "3", "-seed", "42"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCleanScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("mission run in -short mode")
	}
	if err := run([]string{"run", "-scenario", "0", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("mission run in -short mode")
	}
	path := t.TempDir() + "/trace.jsonl"
	if err := run([]string{"record", "-scenario", "0", "-seed", "7", "-o", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"replay", "-i", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordBadScenario(t *testing.T) {
	if err := run([]string{"record", "-scenario", "55"}); err == nil {
		t.Fatal("bad scenario accepted")
	}
}

func TestReplayMissingFile(t *testing.T) {
	if err := run([]string{"replay", "-i", "/nonexistent/trace.jsonl"}); err == nil {
		t.Fatal("missing file accepted")
	}
}
