package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"roboads/internal/benchquality"
	"roboads/internal/scenario"
)

// scenarioCmd implements the `roboads scenario <gen|list|run>` verbs of
// the adversarial scenario engine: generate a DSL suite, list one, or
// execute one through the detector and append a BENCH_quality.json
// leaderboard record.
func scenarioCmd(args []string) error {
	if len(args) == 0 {
		return errors.New("scenario: missing verb (want gen, list, or run)")
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("scenario "+verb, flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "suite base seed (gen, or list/run without -i)")
	fuzz := fs.Int("fuzz", 0, "append N fuzz-swept scenarios to a generated suite")
	input := fs.String("i", "", "suite DSL file (list/run); empty = generate the default suite")
	output := fs.String("o", "", "output file (gen; default stdout)")
	trials := fs.Int("trials", 1, "trials per scenario (run)")
	workers := fs.Int("workers", 0, "concurrent missions (run); results identical for any value")
	batch := fs.Int("batch", 0, "co-step up to N missions per engine batch (run); results identical for any value")
	label := fs.String("label", "default", "leaderboard record label (run)")
	out := fs.String("out", "", "append the leaderboard record to this BENCH_quality.json (run)")
	if err := fs.Parse(rest); err != nil {
		return err
	}

	load := func() (*scenario.Suite, error) {
		if *input == "" {
			s, err := scenario.Default(*seed)
			if err != nil {
				return nil, err
			}
			if *fuzz > 0 {
				if err := scenario.Fuzz(s, *fuzz); err != nil {
					return nil, err
				}
			}
			return s, nil
		}
		data, err := os.ReadFile(*input)
		if err != nil {
			return nil, err
		}
		return scenario.Decode(data)
	}

	switch verb {
	case "gen":
		s, err := load()
		if err != nil {
			return err
		}
		data, err := s.Encode()
		if err != nil {
			return err
		}
		if *output == "" {
			_, err = os.Stdout.Write(data)
			return err
		}
		if err := os.WriteFile(*output, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote suite %q (%d scenarios, seed %d) to %s\n",
			s.Name, len(s.Scenarios), s.Seed, *output)
		return nil

	case "list":
		s, err := load()
		if err != nil {
			return err
		}
		hash, err := s.Hash()
		if err != nil {
			return err
		}
		fmt.Printf("suite %q  seed=%d  hash=%s  (%d scenarios)\n", s.Name, s.Seed, hash, len(s.Scenarios))
		fmt.Printf("%-34s %-13s %-8s %-10s %s\n", "name", "class", "robot", "world", "attacks")
		for i := range s.Scenarios {
			sc := &s.Scenarios[i]
			world := sc.World
			if world == "" {
				world = "lab"
			}
			kinds := ""
			for j, a := range sc.Attacks {
				if j > 0 {
					kinds += ","
				}
				kinds += a.Kind
			}
			if kinds == "" {
				kinds = "-"
			}
			fmt.Printf("%-34s %-13s %-8s %-10s %s\n", sc.Name, sc.Class, sc.Robot, world, kinds)
		}
		return nil

	case "run":
		s, err := load()
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := scenario.RunSuite(s, scenario.RunConfig{
			Trials:  *trials,
			Workers: *workers,
			Batch:   *batch,
		})
		if err != nil {
			return err
		}
		wall := time.Since(start).Seconds()
		writeSuiteResult(os.Stdout, res)
		fmt.Printf("wall: %.1fs\n", wall)
		if *out == "" {
			return nil
		}
		rec, err := res.Record(s, *label, wall)
		if err != nil {
			return err
		}
		if err := benchquality.Append(*out, rec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "appended record %q (suite hash %s) to %s\n",
			*label, rec.Config.SuiteHash, *out)
		return nil

	default:
		return fmt.Errorf("scenario: unknown verb %q (want gen, list, or run)", verb)
	}
}

// writeSuiteResult renders the per-scenario leaderboard table.
func writeSuiteResult(w io.Writer, res *scenario.SuiteResult) {
	fmt.Fprintf(w, "suite %q  seed=%d  trials=%d\n", res.Suite, res.Seed, res.Trials)
	fmt.Fprintf(w, "%-34s %-13s %8s %8s %8s %8s %9s %6s\n",
		"name", "class", "sFPR%", "sFNR%", "aFPR%", "aFNR%", "delay(s)", "missed")
	for i := range res.Results {
		r := &res.Results[i]
		fmt.Fprintf(w, "%-34s %-13s %8.2f %8.2f %8.2f %8.2f %9.2f %6d\n",
			r.Name, r.Class,
			100*r.SensorConfusion.FPR(), 100*r.SensorConfusion.FNR(),
			100*r.ActuatorConfusion.FPR(), 100*r.ActuatorConfusion.FNR(),
			r.MeanDelaySec, r.Missed)
	}
	fmt.Fprintf(w, "aggregate: sensor FPR %.2f%% FNR %.2f%%, actuator FPR %.2f%% FNR %.2f%%, mean delay %.2fs, missed %d\n",
		100*res.SensorConfusion.FPR(), 100*res.SensorConfusion.FNR(),
		100*res.ActuatorConfusion.FPR(), 100*res.ActuatorConfusion.FNR(),
		res.AvgDelaySec, res.Missed)
}
