package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"roboads/client"
	"roboads/internal/api"
	"roboads/internal/router"
)

// waitGaugeAtLeast polls a node's /metrics until the named series
// reaches want.
func waitGaugeAtLeast(t *testing.T, base, name string, want float64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if metricValue(t, string(body), name) >= want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %g on %s", name, want, base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitNodeReady polls a node's /readyz until it answers 200.
func waitNodeReady(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	c := client.New(base)
	deadline := time.Now().Add(timeout)
	for {
		if c.Ready(context.Background()) == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became ready", base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMultinodeFailoverMigration is the multi-node acceptance test, all
// /v1 traffic flowing through the consistent-hash router:
//
//   - a primary with -ack-policy=follower, a -follow replica tailing its
//     WAL stream, and an independent third node form the fleet;
//   - two sessions placed (by proposed ID) on the primary drive the same
//     recorded mission; one is live-migrated to the third node mid-run
//     while the other stays as the unmigrated control;
//   - the primary is then SIGKILLed; the follower promotes and the
//     router fails traffic over;
//   - afterwards acked ≤ recovered ≤ sent must hold for the control
//     session, and both sessions' resumed timelines must be bit-for-bit
//     the uninterrupted in-process reference — which makes the migrated
//     timeline identical to the unmigrated control's.
func TestMultinodeFailoverMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("multinode e2e in -short mode")
	}
	const (
		total   = 90 // frames per session
		half    = 45 // migration point
		postMig = 60 // frames driven before the kill
	)
	frames := recordedFrames(t, 301, total)
	ref := localWireReports(t, frames)

	tmp := t.TempDir()
	// The primary acks a frame only after the follower's own
	// group-commit fsync covers it (zero acked-frame loss on SIGKILL).
	cmdP, addrP := spawnServeHelper(t, filepath.Join(tmp, "p"), filepath.Join(tmp, "p.addr"),
		32, 2*time.Millisecond, "ROBOADS_ACK_POLICY=follower")
	defer cmdP.Process.Kill()
	baseP := "http://" + addrP
	cmdF, addrF := spawnServeHelper(t, filepath.Join(tmp, "f"), filepath.Join(tmp, "f.addr"),
		32, 2*time.Millisecond, "ROBOADS_FOLLOW="+baseP, "ROBOADS_PROMOTE_AFTER=750ms")
	defer cmdF.Process.Kill()
	baseF := "http://" + addrF
	cmdN, addrN := spawnServeHelper(t, filepath.Join(tmp, "n"), filepath.Join(tmp, "n.addr"),
		32, 2*time.Millisecond)
	defer cmdN.Process.Kill()
	baseN := "http://" + addrN

	// No acks before the replication stream is up, or they would degrade
	// to local durability only and the zero-loss contract would not bind.
	waitGaugeAtLeast(t, baseP, "roboads_fleet_repl_followers", 1, 10*time.Second)

	nodes := []string{baseP, baseF, baseN}
	rt, err := router.New(router.Config{Nodes: nodes, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rsrv := httptest.NewServer(rt.Handler())
	defer rsrv.Close()
	rc := client.New(rsrv.URL)
	ctx := context.Background()

	// Propose IDs the hash places on the primary, so both sessions are
	// replicated and in the blast radius of the kill.
	var ids []string
	for i := 0; len(ids) < 2 && i < 10000; i++ {
		if id := fmt.Sprintf("mn-%04d", i); router.Rank(id, nodes)[0] == baseP {
			ids = append(ids, id)
		}
	}
	if len(ids) < 2 {
		t.Fatal("found no primary-owned session IDs")
	}
	migID, ctlID := ids[0], ids[1]
	for _, id := range []string{migID, ctlID} {
		info, err := rc.Create(ctx, api.CreateRequest{Robot: "khepera", ID: id})
		if err != nil {
			t.Fatalf("create %s through router: %v", id, err)
		}
		if info.ID != id {
			t.Fatalf("proposed ID %s, got %s", id, info.ID)
		}
		if _, err := client.New(baseP).Status(ctx, id); err != nil {
			t.Fatalf("session %s not placed on its hash owner: %v", id, err)
		}
	}

	acked := map[string]int{}
	step := func(id string, f int) {
		t.Helper()
		line, err := stepRemote(rsrv.URL, id, &frames[f])
		if err != nil {
			t.Fatalf("step %s frame %d: %v", id, f, err)
		}
		if !reflect.DeepEqual(*line.Report, ref[f]) {
			t.Fatalf("session %s: report %d diverged from reference", id, f)
		}
		acked[id]++
	}
	for f := 0; f < half; f++ {
		step(migID, f)
		step(ctlID, f)
	}

	// Live-migrate one session to the independent node, mid-mission.
	mresp, err := rc.Migrate(ctx, migID, baseN)
	if err != nil {
		t.Fatalf("migrate %s: %v", migID, err)
	}
	if mresp.FramesApplied != half {
		t.Fatalf("migration boundary at %d frames, want %d", mresp.FramesApplied, half)
	}
	// The router chases the tombstone redirect transparently.
	for f := half; f < postMig; f++ {
		step(migID, f)
		step(ctlID, f)
	}
	st, err := client.New(baseN).Status(ctx, migID)
	if err != nil {
		t.Fatalf("migrated session not live on target: %v", err)
	}
	if st.FramesApplied != postMig {
		t.Fatalf("target has %d frames of %s, want %d", st.FramesApplied, migID, postMig)
	}

	// SIGKILL the primary: no drain, no hooks. The follower promotes
	// after its silence window and the router fails over to it.
	if err := cmdP.Process.Kill(); err != nil {
		t.Fatalf("kill -9 primary: %v", err)
	}
	cmdP.Wait()
	waitNodeReady(t, baseF, 15*time.Second)

	// Durability across failover: every frame the dead primary acked is
	// on the promoted follower.
	stc, err := client.New(baseF).Status(ctx, ctlID)
	if err != nil {
		t.Fatalf("control session after failover: %v", err)
	}
	if stc.FramesApplied < acked[ctlID] || stc.FramesApplied > postMig {
		t.Fatalf("control session: recovered %d frames with %d acked, %d sent",
			stc.FramesApplied, acked[ctlID], postMig)
	}

	// Resume both sessions through the router; every continued report
	// must be bit-for-bit the reference timeline.
	for f := stc.FramesApplied; f < total; f++ {
		step(ctlID, f)
	}
	for f := postMig; f < total; f++ {
		step(migID, f)
	}
}
