package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"roboads/internal/router"
	"roboads/internal/telemetry"
)

// routeOptions configures the fleet router front.
type routeOptions struct {
	addr string
	// nodes are the fleet nodes' base URLs. Placement is rendezvous
	// hashing of the session ID over this list, so every router given
	// the same list agrees on an owner with no coordination.
	nodes []string
	// healthInterval is the /readyz poll cadence (0: 500ms).
	healthInterval time.Duration
	// onReady, when set, receives the bound listen address.
	onReady func(net.Addr)
	quiet   bool
}

// runRoute fronts the node list as one logical fleet: /v1 traffic is
// placed by consistent hash and proxied, with failover to successor
// nodes, migration redirects chased, and retry hints honored. The
// router's own telemetry (/metrics, /debug/pprof) shares the listener.
func runRoute(ctx context.Context, opts routeOptions) error {
	topts := telemetry.Options{}
	if !opts.quiet {
		topts.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}
	tel := telemetry.New(topts)

	logf := func(string, ...any) {}
	if !opts.quiet {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	rt, err := router.New(router.Config{
		Nodes:          opts.nodes,
		HealthInterval: opts.healthInterval,
		Metrics:        tel.Registry(),
		Logf:           logf,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	h := rt.Handler()
	srv, addr, err := tel.ServeWith(opts.addr, map[string]http.Handler{
		"/v1/":         h,
		"GET /healthz": h,
		"GET /readyz":  h,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if !opts.quiet {
		fmt.Fprintf(os.Stderr, "routing %d nodes on http://%s\n", len(opts.nodes), addr)
	}
	if opts.onReady != nil {
		opts.onReady(addr)
	}
	<-ctx.Done()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(sctx)
	return nil
}
