package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scrape fetches a path from the serve endpoint and returns the body.
func scrape(t *testing.T, addr net.Addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr.String() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of an exact (unlabeled) series from a
// Prometheus text exposition.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(exposition)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("parse %s value %q: %v", name, m[1], err)
	}
	return v
}

// The live serve endpoint, scraped mid-run: step-latency and mode-switch
// series must show a running mission under an attack scenario.
func TestServeExposesLiveMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("mission run in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		// IPS spoofing (scenario 1) forces the selector off the IPS
		// reference mode at attack onset, so mode switches are
		// guaranteed; missions == 0 loops until the scrape cancels.
		done <- serveScenario(ctx, serveOptions{
			addr:       "127.0.0.1:0",
			scenarioID: 1,
			seed:       11,
			quiet:      true,
			onReady:    func(a net.Addr) { ready <- a },
		})
	}()

	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("serve exited before ready: %v", err)
	case <-ctx.Done():
		t.Fatal("timed out waiting for serve to bind")
	}

	// Poll /metrics until the mission has visibly progressed.
	var exposition string
	for {
		exposition = scrape(t, addr, "/metrics")
		steps := metricValue(t, exposition, "roboads_engine_steps_total")
		switches := metricValue(t, exposition, "roboads_engine_mode_switches_total")
		latencies := metricValue(t, exposition, "roboads_engine_step_seconds_count")
		if steps > 0 && switches > 0 && latencies > 0 {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatalf("metrics never progressed; last exposition:\n%s", exposition)
		case err := <-done:
			t.Fatalf("serve exited early: %v", err)
		case <-time.After(50 * time.Millisecond):
		}
	}
	if !strings.Contains(exposition, "# TYPE roboads_engine_step_seconds histogram") {
		t.Fatalf("missing step latency histogram:\n%s", exposition)
	}

	// The rest of the surface answers while the mission is running.
	snap := scrape(t, addr, "/snapshot")
	if !strings.Contains(snap, `"selectedMode"`) || !strings.Contains(snap, `"metrics"`) {
		t.Fatalf("/snapshot = %s", snap)
	}
	if !strings.Contains(scrape(t, addr, "/debug/vars"), `"roboads"`) {
		t.Fatal("/debug/vars missing roboads var")
	}
	if scrape(t, addr, "/debug/pprof/") == "" {
		t.Fatal("/debug/pprof/ empty")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after cancel", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not stop after cancel")
	}
}

// serve with a bounded mission count terminates on its own.
func TestServeBoundedMissions(t *testing.T) {
	if testing.Short() {
		t.Skip("mission run in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var addr net.Addr
	err := serveScenario(ctx, serveOptions{
		addr:       "127.0.0.1:0",
		scenarioID: 0,
		seed:       5,
		missions:   1,
		quiet:      true,
		onReady:    func(a net.Addr) { addr = a },
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr == nil {
		t.Fatal("onReady never called")
	}
}

// The -telemetry flag on run exposes the surface for the command's
// duration; a bad address fails fast.
func TestAttachTelemetry(t *testing.T) {
	tel, shutdown, err := attachTelemetry("")
	if err != nil || tel != nil {
		t.Fatalf("disabled: tel=%v err=%v", tel, err)
	}
	shutdown()

	tel, shutdown, err = attachTelemetry("127.0.0.1:0")
	if err != nil || tel == nil {
		t.Fatalf("enabled: tel=%v err=%v", tel, err)
	}
	shutdown()

	if _, _, err = attachTelemetry("256.0.0.1:bad"); err == nil {
		t.Fatal("bad address accepted")
	}
}
