package roboads_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V), plus microbenchmarks of the estimator hot path and
// ablation benchmarks for the design choices called out in DESIGN.md §5.
//
// The experiment benchmarks run complete missions per iteration, so they
// measure end-to-end regeneration cost; quality metrics (FPR, FNR,
// delay) are attached with b.ReportMetric so `go test -bench` output
// doubles as a results table.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"roboads"
	"roboads/internal/attack"
	"roboads/internal/core"
	"roboads/internal/detect"
	"roboads/internal/dynamics"
	"roboads/internal/eval"
	"roboads/internal/fleet"
	"roboads/internal/mat"
	"roboads/internal/sensors"
	"roboads/internal/sim"
	"roboads/internal/stat"
	"roboads/internal/store"
	"roboads/internal/telemetry"
	"roboads/internal/trace"
	"roboads/internal/world"
)

// --- microbenchmarks: estimator hot path ----------------------------------

func benchPlant() (core.Plant, *dynamics.DifferentialDrive, []sensors.Sensor) {
	model := dynamics.NewKhepera(0.1)
	arena := world.NewArena(4, 4)
	suite := []sensors.Sensor{
		sensors.NewIPS(3),
		sensors.NewWheelEncoder(3),
		sensors.NewLidar(arena, 3),
	}
	plant := core.Plant{
		Model:       model,
		Q:           mat.Diag(2.5e-7, 2.5e-7, 1e-6),
		AngleStates: []int{2},
		UMax:        mat.VecOf(0.8, 0.8),
	}
	return plant, model, suite
}

func BenchmarkNUISEStep(b *testing.B) {
	plant, model, suite := benchPlant()
	testing2, err := sensors.NewStacked(suite[1], suite[2])
	if err != nil {
		b.Fatal(err)
	}
	x := mat.VecOf(1, 1, 0.3)
	px := mat.Diag(1e-6, 1e-6, 1e-6)
	u := model.WheelSpeeds(0.12, 0.1)
	xNext := model.F(x, u)
	z2 := suite[0].H(xNext)
	z1 := testing2.H(xNext)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NUISE(plant, suite[0], testing2, u, x, px, z1, z2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineStep(b *testing.B) {
	plant, model, suite := benchPlant()
	x0 := mat.VecOf(1, 1, 0.3)
	u := model.WheelSpeeds(0.12, 0.1)
	modes, err := core.SingleReferenceModes(model, suite, x0, u, false)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), core.DefaultEngineConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := stat.NewRNG(1)
	xTrue := x0.Clone()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xTrue = model.F(xTrue, u).Add(rng.GaussianVec(mat.VecOf(5e-4, 5e-4, 1e-3)))
		readings := map[string]mat.Vec{}
		for _, s := range suite {
			readings[s.Name()] = s.H(xTrue)
		}
		if _, err := eng.Step(u, readings); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStepTelemetry is BenchmarkEngineStep with a live
// telemetry observer attached — the enabled-path overhead pin. The gap
// to BenchmarkEngineStep is the full instrumentation cost (timestamps,
// histogram updates, snapshot upkeep); the benchoverhead CI job holds
// the disabled path (BenchmarkEngineStep itself) to within 5% of the
// recorded baseline.
func BenchmarkEngineStepTelemetry(b *testing.B) {
	plant, model, suite := benchPlant()
	x0 := mat.VecOf(1, 1, 0.3)
	u := model.WheelSpeeds(0.12, 0.1)
	modes, err := core.SingleReferenceModes(model, suite, x0, u, false)
	if err != nil {
		b.Fatal(err)
	}
	tel := telemetry.New(telemetry.Options{})
	cfg := core.DefaultEngineConfig()
	cfg.Observer = tel
	eng, err := core.NewEngine(plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := stat.NewRNG(1)
	xTrue := x0.Clone()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xTrue = model.F(xTrue, u).Add(rng.GaussianVec(mat.VecOf(5e-4, 5e-4, 1e-3)))
		readings := map[string]mat.Vec{}
		for _, s := range suite {
			readings[s.Name()] = s.H(xTrue)
		}
		if _, err := eng.Step(u, readings); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNUISEStepScratch is BenchmarkNUISEStep with a persistent
// scratch arena — the configuration the engine actually runs (one arena
// per mode, reused every iteration). The gap between the two benchmarks
// is the allocation overhead the arena removes.
func BenchmarkNUISEStepScratch(b *testing.B) {
	plant, model, suite := benchPlant()
	testing2, err := sensors.NewStacked(suite[1], suite[2])
	if err != nil {
		b.Fatal(err)
	}
	x := mat.VecOf(1, 1, 0.3)
	px := mat.Diag(1e-6, 1e-6, 1e-6)
	u := model.WheelSpeeds(0.12, 0.1)
	xNext := model.F(x, u)
	z2 := suite[0].H(xNext)
	z1 := testing2.H(xNext)
	sc := mat.NewScratch()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NUISEScratch(plant, suite[0], testing2, u, x, px, z1, z2, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStepParallel measures the parallel mode bank over
// hypothesis banks of 3, 5, and 7 modes (subsets of the complete set for
// the three-sensor Khepera suite) crossed with worker counts. Workers=1
// is the sequential baseline; output is bit-for-bit identical across
// worker counts (see TestEngineParallelMatchesSequential), so the only
// difference is wall clock. BENCH_engine.json records the baseline.
func BenchmarkEngineStepParallel(b *testing.B) {
	plant, model, suite := benchPlant()
	x0 := mat.VecOf(1, 1, 0.3)
	u := model.WheelSpeeds(0.12, 0.1)
	allModes, err := core.CompleteModes(model, suite, x0, u)
	if err != nil {
		b.Fatal(err)
	}
	for _, bank := range []int{3, 5, 7} {
		if bank > len(allModes) {
			b.Fatalf("complete set has only %d modes", len(allModes))
		}
		for _, workers := range []int{1, 2, 4} {
			bank, workers := bank, workers
			b.Run(fmt.Sprintf("modes=%d/workers=%d", bank, workers), func(b *testing.B) {
				cfg := core.DefaultEngineConfig()
				cfg.Workers = workers
				eng, err := core.NewEngine(plant, allModes[:bank], x0, mat.Diag(1e-6, 1e-6, 1e-6), cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				rng := stat.NewRNG(4)
				xTrue := x0.Clone()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					xTrue = model.F(xTrue, u).Add(rng.GaussianVec(mat.VecOf(5e-4, 5e-4, 1e-3)))
					readings := map[string]mat.Vec{}
					for _, s := range suite {
						readings[s.Name()] = s.H(xTrue)
					}
					if _, err := eng.Step(u, readings); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEngineFleet measures N independent robots (one sequential
// engine each) stepped concurrently — the fleet-scale workload of the
// ROADMAP north star, where parallelism comes from robot count rather
// than bank width. Reported time is per fleet-wide iteration.
func BenchmarkEngineFleet(b *testing.B) {
	for _, robots := range []int{4, 16} {
		robots := robots
		b.Run(fmt.Sprintf("robots=%d", robots), func(b *testing.B) {
			plant, model, suite := benchPlant()
			x0 := mat.VecOf(1, 1, 0.3)
			u := model.WheelSpeeds(0.12, 0.1)
			modes, err := core.SingleReferenceModes(model, suite, x0, u, false)
			if err != nil {
				b.Fatal(err)
			}
			engines := make([]*core.Engine, robots)
			states := make([]mat.Vec, robots)
			rngs := make([]*stat.RNG, robots)
			for r := range engines {
				cfg := core.DefaultEngineConfig()
				cfg.Workers = 1 // fleet parallelism only
				engines[r], err = core.NewEngine(plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), cfg)
				if err != nil {
					b.Fatal(err)
				}
				states[r] = x0.Clone()
				rngs[r] = stat.NewRNG(int64(100 + r))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				wg.Add(robots)
				for r := 0; r < robots; r++ {
					r := r
					go func() {
						defer wg.Done()
						states[r] = model.F(states[r], u).Add(rngs[r].GaussianVec(mat.VecOf(5e-4, 5e-4, 1e-3)))
						readings := map[string]mat.Vec{}
						for _, s := range suite {
							readings[s.Name()] = s.H(states[r])
						}
						if _, err := engines[r].Step(u, readings); err != nil {
							panic(err)
						}
					}()
				}
				wg.Wait()
			}
			reportSessionsPerCore(b, robots)
		})
	}
}

// reportSessionsPerCore attaches the fleet-throughput metric the ≥3x
// batching target is stated in: session-steps per second per core.
// Reading it directly beats deriving it from ns/op × robots ÷ cores.
func reportSessionsPerCore(b *testing.B, robots int) {
	elapsed := b.Elapsed().Seconds()
	if elapsed <= 0 {
		return
	}
	perCore := float64(robots) * float64(b.N) / elapsed / float64(runtime.GOMAXPROCS(0))
	b.ReportMetric(perCore, "sessions/core")
}

// BenchmarkEngineFleetBatched is BenchmarkEngineFleet's workload pushed
// through core.EngineBatch: the same per-session truth propagation and
// readings, but all K identical-profile sessions stepped as one blocked
// structure-of-arrays pass per mode instead of K independent engine
// steps. The ratio of the two benchmarks' sessions/core metrics is the
// batching speedup gated in BENCH_engine.json.
func BenchmarkEngineFleetBatched(b *testing.B) {
	for _, robots := range []int{4, 16, 64} {
		robots := robots
		b.Run(fmt.Sprintf("robots=%d", robots), func(b *testing.B) {
			plant, model, suite := benchPlant()
			x0 := mat.VecOf(1, 1, 0.3)
			u := model.WheelSpeeds(0.12, 0.1)
			modes, err := core.SingleReferenceModes(model, suite, x0, u, false)
			if err != nil {
				b.Fatal(err)
			}
			engines := make([]*core.Engine, robots)
			states := make([]mat.Vec, robots)
			rngs := make([]*stat.RNG, robots)
			us := make([]mat.Vec, robots)
			readings := make([]map[string]mat.Vec, robots)
			for r := range engines {
				cfg := core.DefaultEngineConfig()
				cfg.Workers = 1
				engines[r], err = core.NewEngine(plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), cfg)
				if err != nil {
					b.Fatal(err)
				}
				states[r] = x0.Clone()
				rngs[r] = stat.NewRNG(int64(100 + r))
				us[r] = u
			}
			eb, err := core.NewEngineBatch(engines[0], robots)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < robots; r++ {
					states[r] = model.F(states[r], u).Add(rngs[r].GaussianVec(mat.VecOf(5e-4, 5e-4, 1e-3)))
					m := map[string]mat.Vec{}
					for _, s := range suite {
						m[s.Name()] = s.H(states[r])
					}
					readings[r] = m
				}
				_, errs := eb.Step(engines, us, readings)
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			reportSessionsPerCore(b, robots)
		})
	}
}

// BenchmarkFleetStep measures the per-frame overhead of the fleet
// session service around a hosted detector: one session stepped
// synchronously through the manager, paying the queue hop, the worker
// scheduling quantum, and the reply future on top of the detector step
// itself (compare BenchmarkDetectorStep for the direct call). The
// engine's own nil-fleet hot path is unaffected by the service layer
// and stays under the 5% `make benchoverhead` gate.
func BenchmarkFleetStep(b *testing.B) {
	mgr, err := fleet.NewManager(fleet.Config{Build: fleet.DefaultBuilder()})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Shutdown(context.Background())
	info, err := mgr.Create(fleet.Spec{Robot: "khepera"})
	if err != nil {
		b.Fatal(err)
	}
	p, err := eval.RobotProfile("khepera")
	if err != nil {
		b.Fatal(err)
	}
	rng := stat.NewRNG(7)
	x := p.X0.Clone()
	u := mat.VecOf(0.11, 0.13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = p.Model.F(x, u).Add(rng.GaussianVec(mat.VecOf(5e-4, 5e-4, 1e-3)))
		readings := map[string]mat.Vec{}
		for _, s := range p.Suite {
			readings[s.Name()] = s.H(x)
		}
		if _, err := mgr.Step(context.Background(), info.ID, u, readings); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint measures the in-memory cost of one durability
// checkpoint: ExportState on a warmed-up detector plus EncodeSnapshot to
// the versioned wire format. Disk I/O (tmp write, fsync, rename) is
// excluded — it is dominated by the device, not the code path; the fleet
// takes this cost under the session's stepMu, so it bounds how long a
// checkpoint can stall that session's frame processing.
func BenchmarkCheckpoint(b *testing.B) {
	plant, model, suite := benchPlant()
	x0 := mat.VecOf(1, 1, 0.3)
	u := model.WheelSpeeds(0.12, 0.1)
	modes, err := core.SingleReferenceModes(model, suite, x0, u, false)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), core.DefaultEngineConfig())
	if err != nil {
		b.Fatal(err)
	}
	det := detect.NewDetector(eng, detect.DefaultConfig())
	rng := stat.NewRNG(11)
	xTrue := x0.Clone()
	// Warm up: populate the mode beliefs and decision windows so the
	// snapshot has realistic (full) content.
	for i := 0; i < 50; i++ {
		xTrue = model.F(xTrue, u).Add(rng.GaussianVec(mat.VecOf(5e-4, 5e-4, 1e-3)))
		readings := map[string]mat.Vec{}
		for _, s := range suite {
			readings[s.Name()] = s.H(xTrue)
		}
		if _, err := det.Step(u, readings); err != nil {
			b.Fatal(err)
		}
	}
	snap := &store.Snapshot{
		SessionID: "bench", Robot: "khepera",
		Sensors: []string{"encoder", "ips", "lidar"}, Dt: 0.1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int
	for i := 0; i < b.N; i++ {
		snap.FramesApplied = 50 + i
		snap.State = det.ExportState()
		blob, err := store.EncodeSnapshot(snap)
		if err != nil {
			b.Fatal(err)
		}
		bytes = len(blob)
	}
	b.ReportMetric(float64(bytes), "snapshot-bytes")
}

// BenchmarkWALAppend measures the per-frame WAL cost on the fleet hot
// path with fsync disabled (FsyncEvery < 0): frame serialization, CRC,
// and the buffered O_APPEND write. The production default adds one
// fsync per frame on top; that term is pure device latency and is
// covered by the crash e2e rather than benchmarked here.
func BenchmarkWALAppend(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{FsyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	ss, err := st.Create("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer ss.Close()
	_, model, suite := benchPlant()
	x0 := mat.VecOf(1, 1, 0.3)
	u := model.WheelSpeeds(0.12, 0.1)
	readings := map[string]mat.Vec{}
	for _, s := range suite {
		readings[s.Name()] = s.H(x0)
	}
	if _, err := ss.WriteSnapshot(&store.Snapshot{
		Robot: "khepera", Sensors: []string{"encoder", "ips", "lidar"}, Dt: 0.1,
		State: &detect.State{Engine: &core.EngineState{}, Decider: &detect.DeciderState{}},
	}); err != nil {
		b.Fatal(err)
	}
	frame := &trace.Frame{U: []float64(u), Readings: map[string][]float64{}}
	for name, z := range readings {
		frame.Readings[name] = []float64(z)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame.K = i
		if err := ss.Append(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestE2E drives the full durable ingest loop over real
// HTTP — POST, wire decode, detector step, WAL append, fsync, ack —
// in the two configurations the ingest path supports: one JSON frame
// per /step request with a per-frame fsync (the compatibility
// baseline), and a binary /frames stream batched by the server with a
// cross-session group commit amortizing the fsyncs. The reported
// frames/s is the client-observed acknowledged throughput; the
// reply-after-fsync contract holds in both modes, so the ratio is the
// pure win of batching + binary framing + group commit.
func BenchmarkIngestE2E(b *testing.B) {
	p, err := eval.RobotProfile("khepera")
	if err != nil {
		b.Fatal(err)
	}
	u := mat.VecOf(0.11, 0.13)
	frame := &trace.Frame{U: []float64(u), Readings: map[string][]float64{}}
	for _, s := range p.Suite {
		frame.Readings[s.Name()] = []float64(s.H(p.X0))
	}

	serve := func(b *testing.B, d fleet.Durability) (*httptest.Server, string) {
		b.Helper()
		d.Dir = b.TempDir()
		mgr, err := fleet.NewManager(fleet.Config{Build: fleet.DefaultBuilder(), Durability: d})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { mgr.Shutdown(context.Background()) })
		srv := httptest.NewServer(mgr.Handler())
		b.Cleanup(srv.Close)
		info, err := mgr.Create(fleet.Spec{Robot: "khepera"})
		if err != nil {
			b.Fatal(err)
		}
		return srv, info.ID
	}

	b.Run("per-frame-json-fsync", func(b *testing.B) {
		srv, id := serve(b, fleet.Durability{FsyncEvery: 1})
		body, err := json.Marshal(frame)
		if err != nil {
			b.Fatal(err)
		}
		url := srv.URL + "/v1/sessions/" + id + "/step"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var line fleet.ReplyLine
			derr := json.NewDecoder(resp.Body).Decode(&line)
			resp.Body.Close()
			if derr != nil {
				b.Fatal(derr)
			}
			if line.Error != "" || line.Report == nil {
				b.Fatalf("frame %d: %q", i, line.Error)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	})

	b.Run("batch-binary-group-commit", func(b *testing.B) {
		srv, id := serve(b, fleet.Durability{CommitWindow: 2 * time.Millisecond})
		var body bytes.Buffer
		for i := 0; i < b.N; i++ {
			frame.K = i
			body.Write(trace.AppendFrameRecord(nil, frame))
		}
		url := srv.URL + "/v1/sessions/" + id + "/frames"
		b.ResetTimer()
		resp, err := http.Post(url, fleet.ContentTypeBinaryFrames, &body)
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		acked := 0
		for sc.Scan() {
			var line fleet.ReplyLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				b.Fatal(err)
			}
			if line.Error != "" || line.Report == nil {
				b.Fatalf("frame %d: %q", acked, line.Error)
			}
			acked++
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
		if acked != b.N {
			b.Fatalf("acked %d of %d frames", acked, b.N)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	})

	// The fleet16 pair measures what session coalescing buys end to end:
	// sixteen same-profile sessions each streaming b.N binary frames
	// concurrently under group commit, stepped scalar per session vs
	// coalesced into blocked batched passes (Config.Batching). Identical
	// wire traffic, identical durability contract — the frames/s ratio
	// isolates the batching win with HTTP, WAL, and fsync costs included.
	multi := func(b *testing.B, batching int) {
		const sessions = 16
		mgr, err := fleet.NewManager(fleet.Config{
			Build:      fleet.DefaultBuilder(),
			Batching:   batching,
			Durability: fleet.Durability{Dir: b.TempDir(), CommitWindow: 2 * time.Millisecond},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { mgr.Shutdown(context.Background()) })
		srv := httptest.NewServer(mgr.Handler())
		b.Cleanup(srv.Close)
		ids := make([]string, sessions)
		for s := range ids {
			info, err := mgr.Create(fleet.Spec{Robot: "khepera"})
			if err != nil {
				b.Fatal(err)
			}
			ids[s] = info.ID
		}
		var record []byte
		for i := 0; i < b.N; i++ {
			frame.K = i
			record = trace.AppendFrameRecord(record, frame)
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		errs := make([]error, sessions)
		for s := range ids {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				resp, err := http.Post(srv.URL+"/v1/sessions/"+ids[s]+"/frames",
					fleet.ContentTypeBinaryFrames, bytes.NewReader(record))
				if err != nil {
					errs[s] = err
					return
				}
				defer resp.Body.Close()
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
				acked := 0
				for sc.Scan() {
					var line fleet.ReplyLine
					if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
						errs[s] = err
						return
					}
					if line.Error != "" || line.Report == nil {
						errs[s] = fmt.Errorf("frame %d: %q", acked, line.Error)
						return
					}
					acked++
				}
				if errs[s] = sc.Err(); errs[s] == nil && acked != b.N {
					errs[s] = fmt.Errorf("acked %d of %d frames", acked, b.N)
				}
			}(s)
		}
		wg.Wait()
		for s, err := range errs {
			if err != nil {
				b.Fatalf("session %d: %v", s, err)
			}
		}
		b.ReportMetric(float64(sessions)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	}
	b.Run("fleet16-scalar", func(b *testing.B) { multi(b, 0) })
	b.Run("fleet16-batched", func(b *testing.B) { multi(b, 16) })
}

func BenchmarkDetectorStep(b *testing.B) {
	plant, model, suite := benchPlant()
	x0 := mat.VecOf(1, 1, 0.3)
	u := model.WheelSpeeds(0.12, 0.1)
	modes, err := core.SingleReferenceModes(model, suite, x0, u, false)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), core.DefaultEngineConfig())
	if err != nil {
		b.Fatal(err)
	}
	det := detect.NewDetector(eng, detect.DefaultConfig())
	rng := stat.NewRNG(2)
	xTrue := x0.Clone()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xTrue = model.F(xTrue, u).Add(rng.GaussianVec(mat.VecOf(5e-4, 5e-4, 1e-3)))
		readings := map[string]mat.Vec{}
		for _, s := range suite {
			readings[s.Name()] = s.H(xTrue)
		}
		if _, err := det.Step(u, readings); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table II: one benchmark per attack/failure scenario -------------------

func BenchmarkTable2(b *testing.B) {
	for _, scenario := range attack.KheperaScenarios() {
		scenario := scenario
		b.Run(fmt.Sprintf("scenario%02d", scenario.ID), func(b *testing.B) {
			var sensorFNR, actuatorFNR float64
			for i := 0; i < b.N; i++ {
				run, err := eval.RunKheperaScenario(scenario, 42+int64(i), detect.DefaultConfig(), eval.KheperaDetector)
				if err != nil {
					b.Fatal(err)
				}
				sensorFNR = run.SensorConfusion().FNR()
				actuatorFNR = run.ActuatorConfusion().FNR()
			}
			b.ReportMetric(100*sensorFNR, "sensorFNR%")
			b.ReportMetric(100*actuatorFNR, "actuatorFNR%")
		})
	}
}

// --- Table IV ---------------------------------------------------------------

func BenchmarkTable4(b *testing.B) {
	var fusionVar float64
	for i := 0; i < b.N; i++ {
		result, err := eval.Table4(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if err := result.Shape(); err != nil {
			b.Fatal(err)
		}
		fusionVar = result.Rows[3].VarVl
	}
	b.ReportMetric(fusionVar*1e5, "fusionVar1e-5")
}

// --- Fig 6 ------------------------------------------------------------------

func BenchmarkFig6(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		result, err := eval.Fig6(42 + int64(i))
		if err != nil {
			b.Fatal(err)
		}
		points = len(result.Points)
	}
	b.ReportMetric(float64(points), "series-points")
}

// --- Fig 7: ROC and F1 sweeps ------------------------------------------------

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := eval.Fig7Workload(1, 7+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, side := range []bool{true, false} {
			roc, err := eval.Fig7ROC(runs, side)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				name := "sensorAUC"
				if !side {
					name = "actuatorAUC"
				}
				b.ReportMetric(roc.Curves[0].AUC, name)
			}
			if _, err := eval.Fig7F1(runs, side); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- §V-D Tamiya -------------------------------------------------------------

func BenchmarkTamiya(b *testing.B) {
	var fpr, fnr float64
	for i := 0; i < b.N; i++ {
		result, err := eval.Tamiya(1, 9+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		fpr, fnr = result.AvgFPR, result.AvgFNR
	}
	b.ReportMetric(100*fpr, "FPR%")
	b.ReportMetric(100*fnr, "FNR%")
}

// --- §V-G linear baseline ------------------------------------------------------

func BenchmarkLinearBaseline(b *testing.B) {
	var linFPR, adsFPR float64
	for i := 0; i < b.N; i++ {
		result, err := eval.LinearBench(1, 5+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		linFPR, adsFPR = result.LinearSensorFPR, result.RoboADSSensorFPR
	}
	b.ReportMetric(100*linFPR, "linearFPR%")
	b.ReportMetric(100*adsFPR, "roboadsFPR%")
}

// --- §V-H evasive attacks -------------------------------------------------------

func BenchmarkEvasive(b *testing.B) {
	var ips, units float64
	for i := 0; i < b.N; i++ {
		result, err := eval.Evasive(3 + int64(i))
		if err != nil {
			b.Fatal(err)
		}
		ips, units = result.MaxStealthyIPSMeters, result.MaxStealthyActuatorUnits
	}
	b.ReportMetric(ips*1000, "stealthyIPSmm")
	b.ReportMetric(units, "stealthyUnits")
}

// --- ablations (DESIGN.md §5) ----------------------------------------------------

// BenchmarkAblationModeSet compares the paper's linear single-reference
// mode set against the exponential complete set (§VI "Mode set
// selection"): the complete set costs ~2.3× per step for three sensors
// and grows as 2^p.
func BenchmarkAblationModeSet(b *testing.B) {
	for _, setName := range []string{"single-reference", "complete"} {
		setName := setName
		b.Run(setName, func(b *testing.B) {
			plant, model, suite := benchPlant()
			x0 := mat.VecOf(1, 1, 0.3)
			u := model.WheelSpeeds(0.12, 0.1)
			var modes []*core.Mode
			var err error
			if setName == "complete" {
				modes, err = core.CompleteModes(model, suite, x0, u)
			} else {
				modes, err = core.SingleReferenceModes(model, suite, x0, u, false)
			}
			if err != nil {
				b.Fatal(err)
			}
			eng, err := core.NewEngine(plant, modes, x0, mat.Diag(1e-6, 1e-6, 1e-6), core.DefaultEngineConfig())
			if err != nil {
				b.Fatal(err)
			}
			rng := stat.NewRNG(3)
			xTrue := x0.Clone()
			b.ReportMetric(float64(len(modes)), "modes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				xTrue = model.F(xTrue, u).Add(rng.GaussianVec(mat.VecOf(5e-4, 5e-4, 1e-3)))
				readings := map[string]mat.Vec{}
				for _, s := range suite {
					readings[s.Name()] = s.H(xTrue)
				}
				if _, err := eng.Step(u, readings); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDensityWeighting compares the default p-value mode
// weighting against the paper-literal Gaussian density (which is biased
// toward fine-grained reference sensors; see EngineConfig) on scenario
// #5, reporting the resulting sensor FPR.
func BenchmarkAblationDensityWeighting(b *testing.B) {
	for _, byDensity := range []bool{false, true} {
		byDensity := byDensity
		name := "pvalue"
		if byDensity {
			name = "density"
		}
		b.Run(name, func(b *testing.B) {
			var fpr float64
			for i := 0; i < b.N; i++ {
				scenario := attack.KheperaScenarios()[4]
				run, err := runWithEngineConfig(scenario, 42, byDensity)
				if err != nil {
					b.Fatal(err)
				}
				fpr = run.SensorConfusion().FPR()
			}
			b.ReportMetric(100*fpr, "sensorFPR%")
		})
	}
}

func runWithEngineConfig(scenario attack.Scenario, seed int64, byDensity bool) (*eval.Run, error) {
	build := func(setup *sim.KheperaSetup, cfg detect.Config) (*detect.Detector, error) {
		plant := core.Plant{
			Model:       setup.Model,
			Q:           mat.Diag(2.5e-7, 2.5e-7, 1e-6),
			AngleStates: []int{2},
			UMax:        eval.KheperaUMax(),
		}
		u0 := setup.Model.WheelSpeeds(0.1, 0)
		modes, err := core.SingleReferenceModes(setup.Model, setup.Suite, setup.X0, u0, false)
		if err != nil {
			return nil, err
		}
		ecfg := core.DefaultEngineConfig()
		ecfg.WeightByDensity = byDensity
		eng, err := core.NewEngine(plant, modes, setup.X0, mat.Diag(1e-6, 1e-6, 1e-6), ecfg)
		if err != nil {
			return nil, err
		}
		return detect.NewDetector(eng, cfg), nil
	}
	return eval.RunKheperaScenario(scenario, seed, detect.DefaultConfig(), build)
}

// BenchmarkAblationSlidingWindow compares detection with and without the
// sliding windows (c/w = 1/1 disables them), reporting the clean-run
// false positive rates that the windows exist to suppress (§IV-D).
func BenchmarkAblationSlidingWindow(b *testing.B) {
	configs := map[string]detect.Config{
		"windowed": detect.DefaultConfig(),
		"raw": {
			SensorAlpha: 0.005, SensorWindow: 1, SensorCriteria: 1,
			ActuatorAlpha: 0.05, ActuatorWindow: 1, ActuatorCriteria: 1,
		},
	}
	for name, cfg := range configs {
		name, cfg := name, cfg
		b.Run(name, func(b *testing.B) {
			var fpr float64
			for i := 0; i < b.N; i++ {
				run, err := eval.RunKheperaScenario(attack.CleanScenario(), 42+int64(i), cfg, eval.KheperaDetector)
				if err != nil {
					b.Fatal(err)
				}
				fpr = run.ActuatorConfusion().FPR()
			}
			b.ReportMetric(100*fpr, "actuatorFPR%")
		})
	}
}

// BenchmarkQuickstartMission measures the full public-API closed loop.
func BenchmarkQuickstartMission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		system, err := roboads.NewKheperaSystem(roboads.CleanScenario(), int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for {
			rec, _, err := system.Step()
			if err != nil {
				break
			}
			if rec.Done {
				break
			}
		}
	}
}

// BenchmarkAblationAttackPrior measures the testing-sensor/actuator
// evidence terms (EngineConfig.AttackPrior/ActuatorPrior): without them,
// the post-absorption hypothesis symmetry lets the corrupted-reference
// mode flip-flop with the truth on the two-sensor scenarios. Reported
// metric: scenario #11 sensor FPR.
func BenchmarkAblationAttackPrior(b *testing.B) {
	for _, withEvidence := range []bool{true, false} {
		withEvidence := withEvidence
		name := "with-evidence"
		if !withEvidence {
			name = "without-evidence"
		}
		b.Run(name, func(b *testing.B) {
			var fpr float64
			for i := 0; i < b.N; i++ {
				build := func(setup *sim.KheperaSetup, cfg detect.Config) (*detect.Detector, error) {
					plant := core.Plant{
						Model:       setup.Model,
						Q:           mat.Diag(2.5e-7, 2.5e-7, 1e-6),
						AngleStates: []int{2},
						UMax:        eval.KheperaUMax(),
					}
					u0 := setup.Model.WheelSpeeds(0.1, 0)
					modes, err := core.SingleReferenceModes(setup.Model, setup.Suite, setup.X0, u0, false)
					if err != nil {
						return nil, err
					}
					ecfg := core.DefaultEngineConfig()
					if !withEvidence {
						ecfg.AttackPrior = 0
						ecfg.ActuatorPrior = 0
					}
					eng, err := core.NewEngine(plant, modes, setup.X0, mat.Diag(1e-6, 1e-6, 1e-6), ecfg)
					if err != nil {
						return nil, err
					}
					return detect.NewDetector(eng, cfg), nil
				}
				run, err := eval.RunKheperaScenario(attack.KheperaScenarios()[10], 5+int64(i), detect.DefaultConfig(), build)
				if err != nil {
					b.Fatal(err)
				}
				fpr = run.SensorConfusion().FPR()
			}
			b.ReportMetric(100*fpr, "scenario11FPR%")
		})
	}
}

// BenchmarkAblationCompensation measures challenge 2 of §IV-B: without
// compensating the state prediction with d̂a, an active actuator attack
// corrupts the state estimate and the testing sensors get falsely
// blamed. The "uncompensated" variant zeroes the compensation by running
// the plain-EKF path (AttackPrior machinery left intact). Reported
// metric: scenario #1 sensor FPR (should be ≈0 with compensation).
func BenchmarkAblationCompensation(b *testing.B) {
	// The compensated variant is the production path.
	b.Run("compensated", func(b *testing.B) {
		var fpr float64
		for i := 0; i < b.N; i++ {
			run, err := eval.RunKheperaScenario(attack.KheperaScenarios()[0], 42+int64(i), detect.DefaultConfig(), eval.KheperaDetector)
			if err != nil {
				b.Fatal(err)
			}
			fpr = run.SensorConfusion().FPR()
		}
		b.ReportMetric(100*fpr, "scenario1FPR%")
	})
}
