// Package client is the typed Go client of the roboads /v1 fleet API.
// It speaks exactly the wire structs of internal/api against a single
// node or a router, decodes every non-2xx response into *api.Error (so
// callers dispatch on machine-readable codes, not message strings), and
// absorbs backpressure on Step with the server's exact millisecond
// retry hint. Everything in cmd/ that talks /v1 goes through this
// package; raw net/http /v1 calls live only here and in the router.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"roboads/internal/api"
	"roboads/internal/trace"
)

// Client talks to one roboads node (or router) at a base URL. The zero
// value is not usable; construct with New. Safe for concurrent use.
type Client struct {
	base          string
	hc            *http.Client
	retryHook     func(time.Duration)
	headerTimeout time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetryHook observes every backpressure pause Step is about to
// take, e.g. to count retries or cap total wait in tests.
func WithRetryHook(f func(time.Duration)) Option { return func(c *Client) { c.retryHook = f } }

// WithHeaderTimeout bounds how long a streaming open (Stream, Replicate)
// may wait for the server's response headers before the attempt is
// failed. 0 restores the default (30s); it cannot be disabled, because
// an unbounded wait can never return: see doStream.
func WithHeaderTimeout(d time.Duration) Option { return func(c *Client) { c.headerTimeout = d } }

// New builds a client for base, which may omit the scheme
// ("127.0.0.1:8080" and "http://127.0.0.1:8080" are equivalent).
func New(base string, opts ...Option) *Client {
	base = strings.TrimSuffix(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{base: base, hc: http.DefaultClient, headerTimeout: 30 * time.Second}
	for _, o := range opts {
		o(c)
	}
	if c.headerTimeout <= 0 {
		c.headerTimeout = 30 * time.Second
	}
	return c
}

// errHeaderTimeout fails a streaming open whose response headers did not
// arrive within the client's header timeout.
var errHeaderTimeout = errors.New("client: timed out waiting for response headers")

// doStream issues a streaming request whose body is an open-ended pipe
// (Stream's frames, Replicate's acks) and waits for response headers.
//
// The watchdog is load-bearing, not a courtesy. If the peer dies after
// the TCP connect but before its response headers, net/http cannot fail
// the round trip until its write loop returns — and the write loop is
// blocked reading our pipe, which produces nothing until the caller has
// a stream to send on. Left alone, Do blocks forever (transport.go
// mapRoundTripError waits on writeLoopDone unconditionally). Closing the
// pipe writer from a timer is the only lever that unblocks the write
// loop and turns the wedged open into an error the caller can retry.
func (c *Client) doStream(req *http.Request, pw *io.PipeWriter) (*http.Response, error) {
	watchdog := time.AfterFunc(c.headerTimeout, func() {
		pw.CloseWithError(errHeaderTimeout)
	})
	resp, err := c.hc.Do(req)
	// A fire racing a successful Do leaves a stream whose sends fail
	// with errHeaderTimeout; callers already treat a broken stream as a
	// reconnect, so the race costs one retry, never a hang.
	watchdog.Stop()
	if err != nil {
		pw.CloseWithError(err)
		return nil, err
	}
	return resp, nil
}

// Base returns the normalized base URL the client targets.
func (c *Client) Base() string { return c.base }

// decodeError turns a non-2xx response into an *api.Error. Bodies that
// are not an envelope (proxies, panics) become a bare message with the
// status-derived code left empty.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	e := &api.Error{Status: resp.StatusCode}
	if err := json.Unmarshal(body, e); err != nil || e.Message == "" {
		e.Message = fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return e
}

// doJSON posts (or gets) a JSON request and decodes a 2xx JSON reply
// into out; non-2xx decodes into *api.Error.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Create opens a session (or restores a persisted one when req.Restore
// is set) and returns its identity.
func (c *Client) Create(ctx context.Context, req api.CreateRequest) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.doJSON(ctx, http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// List returns every live session's status.
func (c *Client) List(ctx context.Context) ([]api.SessionStatus, error) {
	var out []api.SessionStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/sessions", nil, &out)
	return out, err
}

// Status returns one session's status. A migrated session answers an
// *api.Error with code "moved" whose Location names the new node.
func (c *Client) Status(ctx context.Context, id string) (api.SessionStatus, error) {
	var out api.SessionStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &out)
	return out, err
}

// Delete closes a session and discards its persisted state.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Checkpoint snapshots a session now, rotating its WAL.
func (c *Client) Checkpoint(ctx context.Context, id string) (api.CheckpointInfo, error) {
	var out api.CheckpointInfo
	err := c.doJSON(ctx, http.MethodPost, "/v1/sessions/"+id+"/checkpoint", nil, &out)
	return out, err
}

// Migrate live-migrates a session to the node at target (a base URL).
func (c *Client) Migrate(ctx context.Context, id, target string) (api.MigrateResponse, error) {
	var out api.MigrateResponse
	err := c.doJSON(ctx, http.MethodPost, "/v1/sessions/"+id+"/migrate", api.MigrateRequest{Target: target}, &out)
	return out, err
}

// Import ships a session snapshot (+ WAL tail) to this node — the
// receiving half of a live migration.
func (c *Client) Import(ctx context.Context, snapshot []byte, frames []*trace.Frame) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.doJSON(ctx, http.MethodPost, "/v1/internal/sessions/import",
		api.ImportRequest{Snapshot: snapshot, Frames: frames}, &info)
	return info, err
}

// DebugTrace fetches the frame-lifecycle trace snapshot as raw JSON.
func (c *Client) DebugTrace(ctx context.Context) (json.RawMessage, error) {
	var out json.RawMessage
	err := c.doJSON(ctx, http.MethodGet, "/v1/debug/trace", nil, &out)
	return out, err
}

// Healthy probes GET /healthz (process up).
func (c *Client) Healthy(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Ready probes GET /readyz (recovery finished, accepting work).
func (c *Client) Ready(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/readyz", nil, nil)
}

// Step posts one frame to the single-frame endpoint and returns its
// reply line. Backpressure (429) is absorbed here: the client sleeps
// the server's exact ReplyLine.RetryAfterMs hint (falling back to the
// whole-second Retry-After header, then 25ms) and resubmits until ctx
// ends. A frame-level detector error comes back in the line (Error set,
// nil Go error), matching the streaming endpoint's per-frame replies;
// transport and session-level failures return *api.Error.
func (c *Client) Step(ctx context.Context, id string, frame *trace.Frame) (api.ReplyLine, error) {
	body, err := json.Marshal(frame)
	if err != nil {
		return api.ReplyLine{}, err
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sessions/"+id+"/step", bytes.NewReader(body))
		if err != nil {
			return api.ReplyLine{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			return api.ReplyLine{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			var line api.ReplyLine
			derr := json.NewDecoder(resp.Body).Decode(&line)
			header := resp.Header
			resp.Body.Close()
			if derr != nil {
				return api.ReplyLine{}, derr
			}
			d := retryDelay(header, line.RetryAfterMs)
			if c.retryHook != nil {
				c.retryHook(d)
			}
			select {
			case <-ctx.Done():
				return api.ReplyLine{}, ctx.Err()
			case <-time.After(d):
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			defer resp.Body.Close()
			return api.ReplyLine{}, decodeError(resp)
		}
		var line api.ReplyLine
		derr := json.NewDecoder(resp.Body).Decode(&line)
		resp.Body.Close()
		if derr != nil {
			return api.ReplyLine{}, derr
		}
		return line, nil
	}
}

// retryDelay resolves a 429's backoff: the exact millisecond hint when
// present, else the whole-second Retry-After header, else 25ms.
func retryDelay(header http.Header, hintMs int64) time.Duration {
	if hintMs > 0 {
		return time.Duration(hintMs) * time.Millisecond
	}
	if secs, err := strconv.Atoi(header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 25 * time.Millisecond
}

// Stream is one full-duplex /frames ingest: Send ships frames, Recv
// reads the in-order reply lines. Send and Recv may run concurrently
// (one goroutine each); CloseSend ends the frame stream so Recv drains
// the remaining replies to io.EOF.
type Stream struct {
	pw     *io.PipeWriter
	resp   *http.Response
	sc     *bufio.Scanner
	binary bool

	sendMu sync.Mutex
	buf    []byte
}

// Stream opens the streaming ingest for a session. With binary true the
// frames travel as binary frame records (the compact wire); otherwise
// as trace NDJSON. Replies are ReplyLine NDJSON either way.
func (c *Client) Stream(ctx context.Context, id string, binary bool) (*Stream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sessions/"+id+"/frames", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if binary {
		req.Header.Set("Content-Type", api.ContentTypeBinaryFrames)
	} else {
		req.Header.Set("Content-Type", api.ContentTypeNDJSON)
	}
	resp, err := c.doStream(req, pw)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		pw.Close()
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return &Stream{pw: pw, resp: resp, sc: sc, binary: binary}, nil
}

// Send ships one frame. Safe for one sender goroutine at a time.
func (s *Stream) Send(frame *trace.Frame) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.binary {
		s.buf = trace.AppendFrameRecord(s.buf[:0], frame)
	} else {
		data, err := json.Marshal(frame)
		if err != nil {
			return err
		}
		s.buf = append(append(s.buf[:0], data...), '\n')
	}
	_, err := s.pw.Write(s.buf)
	return err
}

// CloseSend ends the frame stream; the server finishes replying to
// every accepted frame and closes the response.
func (s *Stream) CloseSend() error { return s.pw.Close() }

// Recv returns the next reply line; io.EOF after the final reply of a
// closed stream.
func (s *Stream) Recv() (api.ReplyLine, error) {
	for s.sc.Scan() {
		if len(bytes.TrimSpace(s.sc.Bytes())) == 0 {
			continue
		}
		var line api.ReplyLine
		if err := json.Unmarshal(s.sc.Bytes(), &line); err != nil {
			return api.ReplyLine{}, fmt.Errorf("reply line: %w", err)
		}
		return line, nil
	}
	if err := s.sc.Err(); err != nil {
		return api.ReplyLine{}, err
	}
	return api.ReplyLine{}, io.EOF
}

// Close tears the stream down (both directions).
func (s *Stream) Close() error {
	s.pw.Close()
	return s.resp.Body.Close()
}

// ReplStream is the follower side of a /v1/internal/replicate stream:
// Recv reads the primary's records, Ack confirms durable application.
type ReplStream struct {
	pw   *io.PipeWriter
	resp *http.Response
	sc   *bufio.Scanner

	ackMu sync.Mutex
}

// Replicate opens a replication stream, announcing the follower's
// durable cursor per session (absent = needs a snapshot).
func (c *Client) Replicate(ctx context.Context, cursors map[string]int) (*ReplStream, error) {
	hello, err := json.Marshal(api.ReplHello{Cursors: cursors})
	if err != nil {
		return nil, err
	}
	hello = append(hello, '\n')
	pr, pw := io.Pipe()
	// The hello line precedes the (open-ended) ack pipe on one body.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/internal/replicate",
		io.MultiReader(bytes.NewReader(hello), pr))
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", api.ContentTypeNDJSON)
	resp, err := c.doStream(req, pw)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		pw.Close()
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	return &ReplStream{pw: pw, resp: resp, sc: sc}, nil
}

// Recv returns the primary's next replication record; io.EOF when the
// stream ends.
func (r *ReplStream) Recv() (api.ReplRecord, error) {
	for r.sc.Scan() {
		if len(bytes.TrimSpace(r.sc.Bytes())) == 0 {
			continue
		}
		var rec api.ReplRecord
		if err := json.Unmarshal(r.sc.Bytes(), &rec); err != nil {
			return api.ReplRecord{}, fmt.Errorf("replication record: %w", err)
		}
		return rec, nil
	}
	if err := r.sc.Err(); err != nil {
		return api.ReplRecord{}, err
	}
	return api.ReplRecord{}, io.EOF
}

// Ack tells the primary the follower has made session durable through
// seq. Safe concurrently with Recv.
func (r *ReplStream) Ack(session string, seq int) error {
	data, err := json.Marshal(api.ReplAck{Session: session, Seq: seq})
	if err != nil {
		return err
	}
	data = append(data, '\n')
	r.ackMu.Lock()
	defer r.ackMu.Unlock()
	_, err = r.pw.Write(data)
	return err
}

// Close tears the stream down.
func (r *ReplStream) Close() error {
	r.pw.Close()
	return r.resp.Body.Close()
}

// IsCode reports whether err is an *api.Error carrying the given code —
// sugar over api.IsCode for callers that already import only client.
func IsCode(err error, code string) bool { return api.IsCode(err, code) }
