package roboads_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"roboads"
)

// kheperaComponents assembles the component-path ingredients used by
// both the legacy two-step construction and NewPipeline.
func kheperaComponents(t *testing.T) (roboads.Plant, []*roboads.Mode, roboads.Vec, *roboads.Matrix, []roboads.Sensor) {
	t.Helper()
	model := roboads.NewKheperaModel(0.1)
	arena := roboads.LabArena()
	suite := []roboads.Sensor{
		roboads.NewIPS(3),
		roboads.NewWheelEncoder(3),
		roboads.NewLidar(arena, 3),
	}
	x0 := roboads.Vec{1, 1, 0}
	modes, err := roboads.SingleReferenceModes(model, suite, x0, model.WheelSpeeds(0.1, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	plant := roboads.Plant{
		Model:       model,
		Q:           roboads.Diag(2.5e-7, 2.5e-7, 1e-6),
		AngleStates: []int{2},
	}
	return plant, modes, x0, roboads.Diag(1e-6, 1e-6, 1e-6), suite
}

// stepReports drives det over a deterministic synthetic mission and
// returns the per-iteration decisions.
func stepReports(t *testing.T, det *roboads.Detector, suite []roboads.Sensor, n int) []roboads.Decision {
	t.Helper()
	model := roboads.NewKheperaModel(0.1)
	rng := roboads.NewRNG(9)
	xTrue := roboads.Vec{1, 1, 0}.Clone()
	u := model.WheelSpeeds(0.12, 0.1)
	out := make([]roboads.Decision, 0, n)
	for k := 0; k < n; k++ {
		xTrue = model.F(xTrue, u).Add(rng.GaussianVec(roboads.Vec{5e-4, 5e-4, 1e-3}))
		readings := map[string]roboads.Vec{}
		for _, s := range suite {
			readings[s.Name()] = s.H(xTrue)
		}
		report, err := det.Step(u, readings)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		out = append(out, *report.Decision)
	}
	return out
}

// TestNewPipelineMatchesTwoStep pins the options surface to the legacy
// construction: NewPipeline with default options is bit-for-bit the
// NewEngine + NewDetector path, and WithWorkers does not change output.
func TestNewPipelineMatchesTwoStep(t *testing.T) {
	plant, modes, x0, p0, suite := kheperaComponents(t)
	engine, err := roboads.NewEngine(plant, modes, x0, p0, roboads.DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	legacy := stepReports(t, roboads.NewDetector(engine, roboads.DefaultDetectorConfig()), suite, 40)

	for _, workers := range []int{-1, 4} {
		plant, modes, x0, p0, suite := kheperaComponents(t)
		det, err := roboads.NewPipeline(plant, modes, x0, p0, roboads.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		got := stepReports(t, det, suite, 40)
		if !reflect.DeepEqual(got, legacy) {
			t.Fatalf("NewPipeline(workers=%d) diverged from two-step construction", workers)
		}
	}
}

// TestNewPipelineOptions verifies field-level options reach the decision
// maker: a drastically loose sensor alpha must change alarm behavior
// relative to an impossible-to-trip one on corrupted readings.
func TestNewPipelineOptions(t *testing.T) {
	run := func(opts ...roboads.Option) int {
		plant, modes, x0, p0, suite := kheperaComponents(t)
		det, err := roboads.NewPipeline(plant, modes, x0, p0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		model := roboads.NewKheperaModel(0.1)
		rng := roboads.NewRNG(9)
		xTrue := x0.Clone()
		u := model.WheelSpeeds(0.12, 0.1)
		alarms := 0
		for k := 0; k < 60; k++ {
			xTrue = model.F(xTrue, u).Add(rng.GaussianVec(roboads.Vec{5e-4, 5e-4, 1e-3}))
			readings := map[string]roboads.Vec{}
			for _, s := range suite {
				readings[s.Name()] = s.H(xTrue)
			}
			if k > 20 { // spoof the IPS after warm-up
				readings["ips"] = readings["ips"].Add(roboads.Vec{0.5, 0.5, 0})
			}
			report, err := det.Step(u, readings)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			if report.Decision.SensorAlarm {
				alarms++
			}
		}
		return alarms
	}
	if n := run(roboads.WithSensorAlpha(1e-300), roboads.WithSensorWindow(60, 60)); n != 0 {
		t.Fatalf("untrippable configuration still raised %d alarms", n)
	}
	if n := run(roboads.WithSensorAlpha(0.005), roboads.WithSensorWindow(2, 2)); n == 0 {
		t.Fatal("paper configuration never alarmed on spoofed IPS")
	}
}

// TestNewRobotDetectorProfiles covers the named-profile builder and its
// unknown-robot error path.
func TestNewRobotDetectorProfiles(t *testing.T) {
	for _, robot := range []string{"khepera", "tamiya"} {
		if _, err := roboads.NewRobotDetector(robot, roboads.WithWorkers(2)); err != nil {
			t.Fatalf("NewRobotDetector(%q): %v", robot, err)
		}
	}
	if _, err := roboads.NewRobotDetector("roomba"); err == nil {
		t.Fatal("unknown robot accepted")
	}
}

// TestFleetFacadeSentinels exercises the documented errors.Is contract
// of the fleet error sentinels through the facade re-exports.
func TestFleetFacadeSentinels(t *testing.T) {
	mgr, err := roboads.NewFleet(roboads.FleetConfig{
		MaxSessions: 1,
		Build:       roboads.DefaultFleetBuilder(),
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := mgr.Info("nope"); !errors.Is(err, roboads.ErrSessionNotFound) {
		t.Fatalf("Info(unknown) = %v, want ErrSessionNotFound", err)
	}
	info, err := mgr.Create(roboads.FleetSpec{Robot: "khepera"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create(roboads.FleetSpec{Robot: "khepera"}); !errors.Is(err, roboads.ErrTooManySessions) {
		t.Fatalf("Create over cap = %v, want ErrTooManySessions", err)
	}
	if err := mgr.Close(info.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create(roboads.FleetSpec{Robot: "khepera"}); !errors.Is(err, roboads.ErrClosed) {
		t.Fatalf("Create after Shutdown = %v, want ErrClosed", err)
	}

	// Sentinels survive arbitrary wrapping, and the backpressure error
	// type matches its sentinel while carrying the retry hint.
	for _, sentinel := range []error{roboads.ErrSessionNotFound, roboads.ErrBackpressure,
		roboads.ErrClosed, roboads.ErrTooManySessions} {
		if !errors.Is(fmt.Errorf("submit frame: %w", sentinel), sentinel) {
			t.Fatalf("%v lost under wrapping", sentinel)
		}
	}
	bp := &roboads.BackpressureError{SessionID: "s1", RetryAfter: 25 * time.Millisecond}
	wrapped := fmt.Errorf("ingest: %w", bp)
	if !errors.Is(wrapped, roboads.ErrBackpressure) {
		t.Fatal("BackpressureError does not match ErrBackpressure")
	}
	var got *roboads.BackpressureError
	if !errors.As(wrapped, &got) || got.RetryAfter != 25*time.Millisecond {
		t.Fatalf("errors.As(BackpressureError) = %v", got)
	}
}
